//! Live-vs-sim delivery reliability: the same topology, parameters, and
//! workload executed on both substrates.
//!
//! The paper's evaluation is simulator-only; the live runtime
//! (`da-runtime`) must not change the protocol's observable behaviour.
//! Three experiments check that:
//!
//! * [`run_live_vs_sim`] publishes one event in the bottom group over
//!   perfect channels and compares, across seeded trials, the per-level
//!   delivered fraction, the parasite count, and the event-message
//!   volume between `da_simnet::Engine` and `da_runtime::Runtime`;
//! * [`run_reliability_sweep`] repeats the comparison under *lossy*
//!   channels, sweeping the per-link success probability — the paper's
//!   central axis — through the shared `da_core::channel` model that
//!   both substrates consume. Live and simulated delivery ratios must
//!   agree within noise ([`ratios_agree_within_3_sigma`]) at every
//!   swept probability;
//! * [`run_partition_sweep`] cuts the network in two with a first-class
//!   [`PartitionSchedule`] and sweeps the heal tick, comparing delivery
//!   ratios across cut-and-heal scenarios and insisting the
//!   never-partitioned cohort's delivered sets are *bit-identical*
//!   across substrates from one seed.
//!
//! Every experiment drives both substrates through the unified
//! [`FaultConfig`] (channel + failure + topology in one struct), so the
//! swept axis is always an override on a caller-supplied base config.
//!
//! The live substrate is concurrent (per-trial numbers fluctuate with
//! thread interleaving), so all comparisons are statistical: matching
//! means within noise, and an identical hard zero for parasites.

use crate::report::{KeyedTable, SeriesTable};
use crate::stats::Summary;
use da_runtime::{Runtime, RuntimeConfig};
use da_simnet::{
    derive_seed, Engine, FailureModel, FaultConfig, NodeId, Partition, PartitionSchedule,
    ProcessId, SimConfig, Topology,
};
use damulticast::{DaProcess, EventId, ParamMap, StaticNetwork};

/// Maximum virtual-time budget per trial (rounds or ticks).
const MAX_TIME: u64 = 64;

/// The success probabilities the reliability sweep covers: the perfect
/// corner, two mild-loss points around the paper's 0.85 operating
/// point, and a harsh 20%-loss channel.
#[must_use]
pub fn reliability_sweep_probabilities() -> Vec<f64> {
    vec![1.0, 0.95, 0.9, 0.8]
}

/// The per-tick crash probabilities the churn sweep covers: the
/// no-failure corner, gentle churn, and the harsh rate the acceptance
/// criterion names.
#[must_use]
pub fn churn_sweep_crash_rates() -> Vec<f64> {
    vec![0.0, 0.01, 0.05]
}

/// The heal ticks the partition sweep covers: a heal while the
/// mainland event's infect-and-die wave is still in flight (each
/// process disseminates exactly once on first reception, so the wave
/// only lasts a handful of ticks — the island is re-infected on
/// re-merge), a heal long after the wave has died out (the island stays
/// permanently short one event), and a cut that never heals within the
/// horizon. Mid-wave is tick 2 under the default one-tick channel
/// latency; scale it with the latency (e.g. 4 under `Latency::Fixed(2)`).
#[must_use]
pub fn partition_sweep_heal_ticks() -> Vec<Option<u64>> {
    vec![Some(2), Some(24), None]
}

/// One seeded trial on one substrate: per-level delivered fraction, then
/// parasites, then event messages.
fn trial_metrics(
    group_sizes: &[usize],
    params: &ParamMap,
    faults: &FaultConfig,
    seed: u64,
    live: bool,
    live_max_lag: u64,
) -> Vec<f64> {
    let net = StaticNetwork::linear(group_sizes, params.clone(), seed)
        .expect("experiment topology must be valid");
    let groups = net.groups().to_vec();
    let publisher = groups.last().expect("at least one group").members[0];

    let (procs, counters) = if live {
        let config = RuntimeConfig::default()
            .with_seed(seed)
            .with_workers(2)
            .with_max_lag(live_max_lag)
            .with_faults(faults.clone());
        let mut rt = Runtime::spawn(config, net.into_processes());
        rt.with_process_mut(publisher, |p| p.publish("live-vs-sim"));
        rt.run_until_quiescent(MAX_TIME);
        let out = rt.shutdown();
        (out.processes, out.counters)
    } else {
        let config = SimConfig::default()
            .with_seed(seed)
            .with_faults(faults.clone());
        let mut engine: Engine<DaProcess> = Engine::new(config, net.into_processes());
        engine.process_mut(publisher).publish("live-vs-sim");
        engine.run_until_quiescent(MAX_TIME);
        let counters = engine.counters().clone();
        (engine.into_processes(), counters)
    };

    let id = EventId {
        publisher,
        sequence: 0,
    };
    let mut metrics: Vec<f64> = groups
        .iter()
        .map(|g| {
            let got = g
                .members
                .iter()
                .filter(|&&p| procs[p.index()].has_delivered(id))
                .count();
            got as f64 / g.members.len() as f64
        })
        .collect();
    metrics.push(counters.get("da.parasite") as f64);
    metrics.push((counters.sum_prefix("da.intra.") + counters.sum_prefix("da.inter_out.")) as f64);
    metrics
}

/// One seeded trial boiled down to the overall delivery ratio: the
/// fraction of the full audience (every process — the topology is a
/// linear inclusion chain, so all groups subscribe at or above the
/// publication topic) that delivered the published event.
fn delivery_ratio_trial(
    group_sizes: &[usize],
    params: &ParamMap,
    faults: &FaultConfig,
    seed: u64,
    live: bool,
    live_max_lag: u64,
) -> f64 {
    let per_level = trial_metrics(group_sizes, params, faults, seed, live, live_max_lag);
    let population: usize = group_sizes.iter().sum();
    let delivered: f64 = group_sizes
        .iter()
        .zip(&per_level)
        .map(|(&size, fraction)| fraction * size as f64)
        .sum();
    delivered / population as f64
}

/// Runs `trials` seeded publications on each substrate and tabulates
/// per-level delivered fractions, parasites, and event-message volume.
///
/// Trials run serially: the live runtime is itself a thread pool, and
/// nesting it under the trial fan-out would oversubscribe the host.
#[must_use]
pub fn run_live_vs_sim(
    group_sizes: &[usize],
    params: &ParamMap,
    trials: usize,
    base_seed: u64,
) -> KeyedTable {
    let levels = group_sizes.len();
    let mut columns: Vec<String> = (0..levels).map(|i| format!("delivered_t{i}")).collect();
    columns.push("parasites".into());
    columns.push("event_messages".into());
    let mut table = KeyedTable::new(
        "Live runtime vs simulator reliability",
        "substrate",
        columns,
    );

    let faults = FaultConfig::default();
    for (key, live) in [("simulator", false), ("live runtime", true)] {
        let samples: Vec<Vec<f64>> = (0..trials)
            .map(|t| {
                trial_metrics(
                    group_sizes,
                    params,
                    &faults,
                    derive_seed(base_seed, t as u64),
                    live,
                    1,
                )
            })
            .collect();
        let width = samples.first().map_or(0, Vec::len);
        let summaries: Vec<Summary> = (0..width)
            .map(|m| Summary::of(&samples.iter().map(|s| s[m]).collect::<Vec<f64>>()))
            .collect();
        table.push_row(key, summaries);
    }
    table
}

/// Sweeps the per-link success probability and tabulates the overall
/// delivery ratio on both substrates — the live counterpart of the
/// paper's reliability figures, with the x-axis driven through the
/// shared `da_core::channel` model.
///
/// `base` is the fault config every sweep point starts from; each row
/// overrides only the success probability on its channel. The base
/// channel's latency model and `live_max_lag` together pin the live
/// scheduler's drift window: a one-tick latency with lag 1 reproduces
/// the PR 3 sweep exactly, while a latency floor above one tick with a
/// wider lag lets the barrier-free scheduler actually drift workers
/// apart during the sweep — the delivery ratios must agree either way.
///
/// Trials run serially for the same oversubscription reason as
/// [`run_live_vs_sim`].
#[must_use]
pub fn run_reliability_sweep(
    group_sizes: &[usize],
    params: &ParamMap,
    success_probabilities: &[f64],
    base: &FaultConfig,
    live_max_lag: u64,
    trials: usize,
    base_seed: u64,
) -> SeriesTable {
    let mut table = SeriesTable::new(
        "Delivery ratio under lossy channels, live vs simulated",
        "success_probability",
        vec!["delivery_ratio_sim".into(), "delivery_ratio_live".into()],
    );
    for (row, &p) in success_probabilities.iter().enumerate() {
        let faults = base
            .clone()
            .with_channel(base.channel().with_success_probability(p));
        let mut summaries = Vec::with_capacity(2);
        for live in [false, true] {
            let samples: Vec<f64> = (0..trials)
                .map(|t| {
                    // A distinct seed stream per (probability, substrate,
                    // trial) point, so sweep points are independent.
                    let stream = (row as u64) * 2 + u64::from(live);
                    let seed = derive_seed(derive_seed(base_seed, stream), t as u64);
                    delivery_ratio_trial(group_sizes, params, &faults, seed, live, live_max_lag)
                })
                .collect();
            summaries.push(Summary::of(&samples));
        }
        table.push_row(p, summaries);
    }
    table
}

/// Sweeps the per-tick churn crash probability and tabulates the
/// overall delivery ratio on both substrates — the dynamic-failure
/// counterpart of [`run_reliability_sweep`], with the x-axis driven
/// through the shared `da_core::failure` model that both substrates
/// consume.
///
/// `base` is the fault config every sweep point starts from; its
/// failure model must be [`FailureModel::Churn`], whose recover
/// probability is shared by every row while the crash probability is
/// overridden per row.
///
/// Within one trial, sim and live share the **same seed**, hence the
/// same materialised `FailurePlan`: the crash/recovery schedule is
/// fate-matched across substrates, so the comparison isolates what the
/// substrates may legitimately differ on (thread interleaving), not the
/// luck of which processes churned.
///
/// Trials run serially for the same oversubscription reason as
/// [`run_live_vs_sim`].
///
/// # Panics
///
/// Panics when `base.failure` is not [`FailureModel::Churn`] — the
/// sweep's x-axis is the churn crash probability, so there is no
/// meaningful way to run it over another failure model.
#[must_use]
pub fn run_churn_sweep(
    group_sizes: &[usize],
    params: &ParamMap,
    crash_rates: &[f64],
    base: &FaultConfig,
    trials: usize,
    base_seed: u64,
) -> SeriesTable {
    let FailureModel::Churn {
        recover_probability,
        ..
    } = base.failure
    else {
        panic!(
            "run_churn_sweep requires a base FaultConfig whose failure model is \
             FailureModel::Churn (the recover probability is read from it), got {:?}",
            base.failure
        );
    };
    let mut table = SeriesTable::new(
        "Delivery ratio under continuous churn, live vs simulated",
        "crash_probability",
        vec!["delivery_ratio_sim".into(), "delivery_ratio_live".into()],
    );
    for (row, &crash) in crash_rates.iter().enumerate() {
        let faults = base.clone().with_failures(FailureModel::Churn {
            crash_probability: crash,
            recover_probability,
        });
        let mut summaries = Vec::with_capacity(2);
        for live in [false, true] {
            let samples: Vec<f64> = (0..trials)
                .map(|t| {
                    // Same (rate, trial) seed on both substrates: the
                    // FailurePlan — and with it every crash/recovery
                    // fate — is identical across the pair.
                    let seed = derive_seed(derive_seed(base_seed, row as u64), t as u64);
                    delivery_ratio_trial(group_sizes, params, &faults, seed, live, 1)
                })
                .collect();
            summaries.push(Summary::of(&samples));
        }
        table.push_row(crash, summaries);
    }
    table
}

/// How many leaf-group members the partition sweep places on the minor
/// island (node `"b"`); everyone else stays on node `"a"`.
const ISLAND: usize = 8;

/// The tick every partition-sweep cut opens at.
const CUT_AT: u64 = 0;

/// Builds the two-node fault config for one partition-sweep scenario:
/// the given island pids on node `"b"`, everyone else on node `"a"`,
/// a cut between the nodes from [`CUT_AT`], healing at `heal` (never,
/// if `None`), over the caller's base channel.
fn partition_faults(base: &FaultConfig, island: &[ProcessId], heal: Option<u64>) -> FaultConfig {
    let mut topology = Topology::with_nodes(["a", "b"]);
    for &pid in island {
        topology = topology.with_placement(pid, NodeId(1));
    }
    let mut cut = Partition::cut(vec![vec![NodeId(0)], vec![NodeId(1)]], CUT_AT);
    if let Some(tick) = heal {
        cut = cut.heal_at(tick);
    }
    base.clone()
        .with_topology(topology)
        .with_partitions(PartitionSchedule::none().with_partition(cut))
}

/// One seeded partition trial on one substrate. Publishes one event
/// from the mainland at tick 0 and one from the island after the heal
/// (or mid-cut, for a cut that never heals), runs a fixed [`MAX_TIME`]
/// horizon so both substrates see the identical schedule, and returns
/// the overall delivery ratio across both events, the sorted delivered
/// sets of the never-partitioned (mainland) cohort, and the parasite
/// count.
fn partition_trial(
    group_sizes: &[usize],
    params: &ParamMap,
    base: &FaultConfig,
    heal: Option<u64>,
    seed: u64,
    live: bool,
    live_max_lag: u64,
) -> (f64, Vec<Vec<EventId>>, u64) {
    let net = StaticNetwork::linear(group_sizes, params.clone(), seed)
        .expect("experiment topology must be valid");
    let leaf = net.groups().last().expect("at least one group").clone();
    assert!(
        leaf.members.len() >= 2 * ISLAND,
        "the bottom group must dominate its {ISLAND}-member island"
    );
    let island = leaf.members[leaf.members.len() - ISLAND..].to_vec();
    let mainland_publisher = leaf.members[0];
    let island_publisher = *leaf.members.last().expect("non-empty group");
    let faults = partition_faults(base, &island, heal);
    // Two ticks after the heal the overlay is reachable again; a cut
    // that never heals publishes mid-cut at the latest heal's slot so
    // the scenarios stay comparable.
    let island_publish_tick = heal.map_or(26, |tick| tick + 2);

    let (procs, counters) = if live {
        let config = RuntimeConfig::default()
            .with_seed(seed)
            .with_workers(2)
            .with_max_lag(live_max_lag)
            .with_faults(faults);
        let mut rt = Runtime::spawn(config, net.into_processes());
        rt.with_process_mut(mainland_publisher, |p| p.publish("mainland"));
        rt.run_ticks(island_publish_tick);
        rt.with_process_mut(island_publisher, |p| p.publish("island"));
        rt.run_ticks(MAX_TIME - island_publish_tick);
        let out = rt.shutdown();
        (out.processes, out.counters)
    } else {
        let config = SimConfig::default().with_seed(seed).with_faults(faults);
        let mut engine: Engine<DaProcess> = Engine::new(config, net.into_processes());
        engine.process_mut(mainland_publisher).publish("mainland");
        engine.run_rounds(island_publish_tick);
        engine.process_mut(island_publisher).publish("island");
        engine.run_rounds(MAX_TIME - island_publish_tick);
        let counters = engine.counters().clone();
        (engine.into_processes(), counters)
    };

    let severed = counters.get(if live {
        "rt.dropped_partitioned"
    } else {
        "sim.dropped_partitioned"
    });
    assert!(
        severed > 0,
        "the cut-at-{CUT_AT} partition must sever cross-island gossip"
    );

    let events = [mainland_publisher, island_publisher].map(|publisher| EventId {
        publisher,
        sequence: 0,
    });
    let population: usize = group_sizes.iter().sum();
    let delivered: usize = events
        .iter()
        .map(|&id| procs.iter().filter(|p| p.has_delivered(id)).count())
        .sum();
    let ratio = delivered as f64 / (events.len() * population) as f64;

    let mainland_sets: Vec<Vec<EventId>> = procs
        .iter()
        .enumerate()
        .filter(|(i, _)| !island.contains(&ProcessId::from_index(*i)))
        .map(|(_, p)| {
            let mut ids: Vec<EventId> = p.delivered().iter().map(|e| e.id()).collect();
            ids.sort();
            ids
        })
        .collect();
    (ratio, mainland_sets, counters.get("da.parasite"))
}

/// Sweeps the heal tick of a two-island network partition and tabulates
/// the overall delivery ratio (across one mainland and one island
/// publication) on both substrates — the topology-fault counterpart of
/// [`run_reliability_sweep`], with the x-axis driven through the shared
/// `da_core::topology` model.
///
/// The last eight members of the bottom group live on node `"b"`;
/// a [`Partition`] cuts `"b"` off from tick 0 and heals at the swept
/// tick (`None` = never, tabulated as `x = -1`). `base` supplies the
/// channel under the cut (keep it lossless to isolate the partition
/// axis).
///
/// Within one trial, sim and live share the **same seed**: the
/// partition severs the identical sends on both substrates (the severed
/// check is a pure function consuming no randomness), so beyond the
/// statistical 3σ ratio agreement the never-partitioned cohort must
/// deliver **bit-identical** event sets — which this function asserts
/// per trial, alongside a hard zero for parasites.
///
/// Trials run serially for the same oversubscription reason as
/// [`run_live_vs_sim`].
///
/// # Panics
///
/// Panics when a trial sees a parasite delivery, when a cut fails to
/// sever any send, or when the never-partitioned cohort's delivered
/// sets diverge between the substrates — each a violation of the
/// cross-substrate contract this experiment exists to enforce.
#[must_use]
pub fn run_partition_sweep(
    group_sizes: &[usize],
    params: &ParamMap,
    heal_ticks: &[Option<u64>],
    base: &FaultConfig,
    live_max_lag: u64,
    trials: usize,
    base_seed: u64,
) -> SeriesTable {
    let mut table = SeriesTable::new(
        "Delivery ratio across partition cut-and-heal scenarios, live vs simulated",
        "heal_tick",
        vec!["delivery_ratio_sim".into(), "delivery_ratio_live".into()],
    );
    for (row, &heal) in heal_ticks.iter().enumerate() {
        let mut sim_ratios = Vec::with_capacity(trials);
        let mut live_ratios = Vec::with_capacity(trials);
        for t in 0..trials {
            // Same (scenario, trial) seed on both substrates: link
            // fates are pinned, so the mainland outcome must match
            // exactly, not just statistically.
            let seed = derive_seed(derive_seed(base_seed, row as u64), t as u64);
            let (sim_ratio, sim_sets, sim_parasites) =
                partition_trial(group_sizes, params, base, heal, seed, false, live_max_lag);
            let (live_ratio, live_sets, live_parasites) =
                partition_trial(group_sizes, params, base, heal, seed, true, live_max_lag);
            assert_eq!(sim_parasites, 0, "heal {heal:?} trial {t}: sim parasites");
            assert_eq!(live_parasites, 0, "heal {heal:?} trial {t}: live parasites");
            assert_eq!(
                sim_sets, live_sets,
                "heal {heal:?} trial {t}: the never-partitioned cohort delivered \
                 different event sets across substrates"
            );
            sim_ratios.push(sim_ratio);
            live_ratios.push(live_ratio);
        }
        let x = heal.map_or(-1.0, |tick| tick as f64);
        table.push_row(x, vec![Summary::of(&sim_ratios), Summary::of(&live_ratios)]);
    }
    table
}

/// True when two per-substrate delivery-ratio summaries agree within
/// three standard errors of their difference of means.
///
/// `floor` guards the degenerate corner where both variances collapse
/// (e.g. every trial delivers the full audience at `p = 1.0`): the
/// tolerance never drops below it. Exposed so the acceptance test and
/// the `live_vs_sim` binary apply the identical criterion.
#[must_use]
pub fn ratios_agree_within_3_sigma(sim: &Summary, live: &Summary, floor: f64) -> bool {
    let se_diff = (sim.std_dev.powi(2) / sim.count.max(1) as f64
        + live.std_dev.powi(2) / live.count.max(1) as f64)
        .sqrt();
    (sim.mean - live.mean).abs() <= (3.0 * se_diff).max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::{ChannelConfig, Latency};
    use damulticast::TopicParams;

    /// Pinned-high knobs (as in the e2e suites) so the assertions are
    /// not at the mercy of a thread interleaving.
    fn pinned() -> ParamMap {
        ParamMap::uniform(
            TopicParams::paper_default()
                .with_g(15.0)
                .with_a(3.0)
                .with_fanout(da_membership::FanoutRule::LnPlusC { c: 10.0 }),
        )
    }

    /// A lossless base config whose channel carries the given latency —
    /// the starting point the sweeps override per row.
    fn reliable_base(latency: Latency) -> FaultConfig {
        FaultConfig::new().with_channel(ChannelConfig::reliable().with_latency(latency))
    }

    #[test]
    fn substrates_agree_on_reliability_and_parasites() {
        let t = run_live_vs_sim(&[4, 10, 40], &pinned(), 3, 0xC0FE);
        assert_eq!(t.rows.len(), 2);
        for (row, (name, values)) in t.rows.iter().enumerate() {
            // delivered_t0..t2 all ≈ 1 under pinned knobs.
            for (level, value) in values.iter().enumerate().take(3) {
                assert!(
                    value.mean > 0.95,
                    "row {row} ({name}) level {level}: {}",
                    value.mean
                );
            }
            assert_eq!(values[3].mean, 0.0, "{name}: parasites");
            assert!(values[4].mean > 0.0, "{name}: event traffic recorded");
        }
    }

    /// The PR 3 acceptance criterion, re-run on the barrier-free
    /// scheduler: live and simulated delivery ratios agree within 3σ at
    /// every swept success probability — both in the PR 3 configuration
    /// (one-tick latency, lag window 1) and with a two-tick latency
    /// floor plus a wide lag window, where workers genuinely drift.
    #[test]
    fn reliability_sweep_substrates_agree_within_3_sigma() {
        let probs = reliability_sweep_probabilities();
        let trials = 6;
        for (latency, live_max_lag) in [(Latency::Fixed(1), 1), (Latency::Fixed(2), 4)] {
            let table = run_reliability_sweep(
                &[4, 10, 40],
                &pinned(),
                &probs,
                &reliable_base(latency),
                live_max_lag,
                trials,
                0x5EED,
            );
            assert_eq!(table.rows.len(), probs.len());
            for row in &table.rows {
                let (sim, live) = (&row.values[0], &row.values[1]);
                assert_eq!(sim.count, trials);
                assert_eq!(live.count, trials);
                // Pinned-high knobs keep gossip near-atomic even at p = 0.8.
                assert!(
                    sim.mean > 0.9 && live.mean > 0.9,
                    "p = {} ({latency:?}, lag {live_max_lag}): sim {} / live {} — degraded",
                    row.x,
                    sim.mean,
                    live.mean
                );
                // The 0.02 floor covers the zero-variance corner (p = 1.0
                // delivers everything in every trial on both substrates).
                assert!(
                    ratios_agree_within_3_sigma(sim, live, 0.02),
                    "p = {} ({latency:?}, lag {live_max_lag}): sim {} ± {} vs live {} ± {} \
                     disagree beyond 3σ",
                    row.x,
                    sim.mean,
                    sim.std_dev,
                    live.mean,
                    live.std_dev
                );
            }
        }
    }

    /// Live and simulated delivery ratios agree within 3σ at every
    /// swept churn crash rate — the dynamic-failure analogue of the
    /// reliability criterion, over the shared `da_core::failure` plan
    /// (fate-matched pairs per trial).
    #[test]
    fn churn_sweep_substrates_agree_within_3_sigma() {
        let rates = churn_sweep_crash_rates();
        let trials = 6;
        let base = FaultConfig::new().with_failures(FailureModel::Churn {
            crash_probability: 0.0,
            recover_probability: 0.3,
        });
        let table = run_churn_sweep(&[4, 10, 40], &pinned(), &rates, &base, trials, 0xC4A0);
        assert_eq!(table.rows.len(), rates.len());
        for row in &table.rows {
            let (sim, live) = (&row.values[0], &row.values[1]);
            assert_eq!(sim.count, trials);
            assert_eq!(live.count, trials);
            // Churned processes legitimately miss events, but the
            // stationary aliveness (0.3 / (crash + 0.3)) stays ≥ 85%
            // across the swept rates, so the bulk still delivers.
            assert!(
                sim.mean > 0.6 && live.mean > 0.6,
                "crash = {}: sim {} / live {} — degraded",
                row.x,
                sim.mean,
                live.mean
            );
            if row.x == 0.0 {
                assert!(sim.mean > 0.999 && live.mean > 0.999, "no churn, no loss");
            }
            // The 0.02 floor covers the zero-variance no-churn corner.
            assert!(
                ratios_agree_within_3_sigma(sim, live, 0.02),
                "crash = {}: sim {} ± {} vs live {} ± {} disagree beyond 3σ",
                row.x,
                sim.mean,
                sim.std_dev,
                live.mean,
                live.std_dev
            );
        }
    }

    #[test]
    fn churn_sweep_rejects_a_churnless_base() {
        let result = std::panic::catch_unwind(|| {
            run_churn_sweep(&[4], &pinned(), &[0.0], &FaultConfig::new(), 1, 1)
        });
        assert!(result.is_err(), "a non-Churn base must be rejected");
    }

    /// Tentpole acceptance: across ≥ 3 partition cut-and-heal scenarios
    /// the live and simulated delivery ratios agree within 3σ — and
    /// (asserted inside [`run_partition_sweep`], per trial) the
    /// never-partitioned cohort's delivered sets are bit-identical
    /// across substrates from one seed, with zero parasites. Run both
    /// in the tight configuration and with a two-tick latency floor
    /// plus a wide lag window, where workers genuinely drift.
    #[test]
    fn partition_sweep_substrates_agree_and_mainland_sets_match() {
        let trials = 4;
        // The mid-wave heal tick scales with the channel latency: the
        // infect-and-die wave's senders fire every `latency` ticks.
        for (latency, live_max_lag, early) in
            [(Latency::Fixed(1), 1, 2u64), (Latency::Fixed(2), 4, 4u64)]
        {
            let heals = vec![Some(early), Some(24), None];
            let table = run_partition_sweep(
                &[4, 10, 40],
                &pinned(),
                &heals,
                &reliable_base(latency),
                live_max_lag,
                trials,
                0x9A27,
            );
            assert_eq!(table.rows.len(), heals.len());
            for (row, &heal) in table.rows.iter().zip(&heals) {
                let (sim, live) = (&row.values[0], &row.values[1]);
                assert_eq!(sim.count, trials);
                assert_eq!(live.count, trials);
                assert!(
                    ratios_agree_within_3_sigma(sim, live, 0.02),
                    "heal {heal:?} ({latency:?}, lag {live_max_lag}): sim {} ± {} vs \
                     live {} ± {} disagree beyond 3σ",
                    sim.mean,
                    sim.std_dev,
                    live.mean,
                    live.std_dev
                );
                // The scenarios must actually be distinct: a mid-wave
                // heal re-merges the overlay while the mainland event is
                // still being gossiped (full recovery); a late heal loses
                // that event on the island but the post-heal island event
                // still blankets everyone; a permanent cut strands the
                // island event on its side.
                match heal {
                    Some(tick) if tick == early => assert!(
                        sim.mean > 0.95 && live.mean > 0.95,
                        "early heal must recover fully: sim {} / live {}",
                        sim.mean,
                        live.mean
                    ),
                    Some(_) => assert!(
                        sim.mean > 0.8 && sim.mean < 0.999 && live.mean > 0.8,
                        "late heal must lose the mainland event on the island only: \
                         sim {} / live {}",
                        sim.mean,
                        live.mean
                    ),
                    None => assert!(
                        sim.mean < 0.6 && live.mean < 0.6,
                        "a permanent cut must strand the island: sim {} / live {}",
                        sim.mean,
                        live.mean
                    ),
                }
            }
        }
    }

    #[test]
    fn agreement_criterion_flags_real_gaps() {
        let tight = Summary::of(&[0.99, 1.0, 0.98, 1.0]);
        let close = Summary::of(&[0.98, 0.99, 1.0, 0.97]);
        assert!(ratios_agree_within_3_sigma(&tight, &close, 0.02));
        let far = Summary::of(&[0.5, 0.52, 0.49, 0.51]);
        assert!(!ratios_agree_within_3_sigma(&tight, &far, 0.02));
    }
}
