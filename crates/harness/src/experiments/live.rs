//! Live-vs-sim delivery reliability: the same topology, parameters, and
//! workload executed on both substrates.
//!
//! The paper's evaluation is simulator-only; the live runtime
//! (`da-runtime`) must not change the protocol's observable behaviour.
//! This experiment publishes one event in the bottom group and compares,
//! across seeded trials, the per-level delivered fraction, the parasite
//! count, and the event-message volume between `da_simnet::Engine` and
//! `da_runtime::Runtime`. The live substrate is concurrent (per-trial
//! numbers fluctuate with thread interleaving), so the comparison is
//! statistical: matching means within noise, and an identical hard zero
//! for parasites.

use crate::report::KeyedTable;
use crate::stats::Summary;
use da_runtime::{Runtime, RuntimeConfig};
use da_simnet::{derive_seed, Engine, SimConfig};
use damulticast::{DaProcess, EventId, ParamMap, StaticNetwork};

/// Maximum virtual-time budget per trial (rounds or ticks).
const MAX_TIME: u64 = 64;

/// One seeded trial on one substrate: per-level delivered fraction, then
/// parasites, then event messages.
fn trial_metrics(group_sizes: &[usize], params: &ParamMap, seed: u64, live: bool) -> Vec<f64> {
    let net = StaticNetwork::linear(group_sizes, params.clone(), seed)
        .expect("experiment topology must be valid");
    let groups = net.groups().to_vec();
    let publisher = groups.last().expect("at least one group").members[0];

    let (procs, counters) = if live {
        let config = RuntimeConfig::default().with_seed(seed).with_workers(2);
        let mut rt = Runtime::spawn(config, net.into_processes());
        rt.with_process_mut(publisher, |p| p.publish("live-vs-sim"));
        rt.run_until_quiescent(MAX_TIME);
        let out = rt.shutdown();
        (out.processes, out.counters)
    } else {
        let mut engine: Engine<DaProcess> =
            Engine::new(SimConfig::default().with_seed(seed), net.into_processes());
        engine.process_mut(publisher).publish("live-vs-sim");
        engine.run_until_quiescent(MAX_TIME);
        let counters = engine.counters().clone();
        (engine.into_processes(), counters)
    };

    let id = EventId {
        publisher,
        sequence: 0,
    };
    let mut metrics: Vec<f64> = groups
        .iter()
        .map(|g| {
            let got = g
                .members
                .iter()
                .filter(|&&p| procs[p.index()].has_delivered(id))
                .count();
            got as f64 / g.members.len() as f64
        })
        .collect();
    metrics.push(counters.get("da.parasite") as f64);
    metrics.push((counters.sum_prefix("da.intra.") + counters.sum_prefix("da.inter_out.")) as f64);
    metrics
}

/// Runs `trials` seeded publications on each substrate and tabulates
/// per-level delivered fractions, parasites, and event-message volume.
///
/// Trials run serially: the live runtime is itself a thread pool, and
/// nesting it under the trial fan-out would oversubscribe the host.
#[must_use]
pub fn run_live_vs_sim(
    group_sizes: &[usize],
    params: &ParamMap,
    trials: usize,
    base_seed: u64,
) -> KeyedTable {
    let levels = group_sizes.len();
    let mut columns: Vec<String> = (0..levels).map(|i| format!("delivered_t{i}")).collect();
    columns.push("parasites".into());
    columns.push("event_messages".into());
    let mut table = KeyedTable::new(
        "Live runtime vs simulator reliability",
        "substrate",
        columns,
    );

    for (key, live) in [("simulator", false), ("live runtime", true)] {
        let samples: Vec<Vec<f64>> = (0..trials)
            .map(|t| trial_metrics(group_sizes, params, derive_seed(base_seed, t as u64), live))
            .collect();
        let width = samples.first().map_or(0, Vec::len);
        let summaries: Vec<Summary> = (0..width)
            .map(|m| Summary::of(&samples.iter().map(|s| s[m]).collect::<Vec<f64>>()))
            .collect();
        table.push_row(key, summaries);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use damulticast::TopicParams;

    /// Pinned-high knobs (as in the e2e suites) so the assertions are
    /// not at the mercy of a thread interleaving.
    fn pinned() -> ParamMap {
        ParamMap::uniform(
            TopicParams::paper_default()
                .with_g(15.0)
                .with_a(3.0)
                .with_fanout(da_membership::FanoutRule::LnPlusC { c: 10.0 }),
        )
    }

    #[test]
    fn substrates_agree_on_reliability_and_parasites() {
        let t = run_live_vs_sim(&[4, 10, 40], &pinned(), 3, 0xC0FE);
        assert_eq!(t.rows.len(), 2);
        for (row, (name, values)) in t.rows.iter().enumerate() {
            // delivered_t0..t2 all ≈ 1 under pinned knobs.
            for (level, value) in values.iter().enumerate().take(3) {
                assert!(
                    value.mean > 0.95,
                    "row {row} ({name}) level {level}: {}",
                    value.mean
                );
            }
            assert_eq!(values[3].mean, 0.0, "{name}: parasites");
            assert!(values[4].mean > 0.0, "{name}: event traffic recorded");
        }
    }
}
