//! Terminal ASCII plots of [`SeriesTable`]s — a rough visual check that a
//! regenerated figure has the paper's shape without leaving the shell.

use crate::report::SeriesTable;
use std::fmt::Write as _;

/// Characters assigned to the first few series.
const MARKS: &[char] = &['o', '+', 'x', '*', '#', '@'];

/// Renders an ASCII scatter plot of every series in `table` (mean values
/// only), `width × height` characters of plotting area, with the y-range
/// spanning `[0, max]` and the x-range `[min_x, max_x]`.
#[must_use]
pub fn ascii_plot(table: &SeriesTable, width: usize, height: usize) -> String {
    let width = width.max(10);
    let height = height.max(4);
    let mut out = String::new();
    let _ = writeln!(out, "{}", table.title);
    if table.rows.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let x_min = table.rows.iter().map(|r| r.x).fold(f64::INFINITY, f64::min);
    let x_max = table
        .rows
        .iter()
        .map(|r| r.x)
        .fold(f64::NEG_INFINITY, f64::max);
    let y_max = table
        .rows
        .iter()
        .flat_map(|r| r.values.iter().map(|v| v.mean))
        .fold(0.0_f64, f64::max)
        .max(1e-12);

    let mut grid = vec![vec![' '; width]; height];
    for (s, _) in table.columns.iter().enumerate() {
        let mark = MARKS[s % MARKS.len()];
        for row in &table.rows {
            let Some(v) = row.values.get(s) else { continue };
            let xf = if x_max > x_min {
                (row.x - x_min) / (x_max - x_min)
            } else {
                0.5
            };
            let yf = (v.mean / y_max).clamp(0.0, 1.0);
            let col = (xf * (width - 1) as f64).round() as usize;
            let line = height - 1 - (yf * (height - 1) as f64).round() as usize;
            grid[line][col] = mark;
        }
    }

    let _ = writeln!(out, "{y_max:>10.2} ┤");
    for line in grid {
        let _ = writeln!(out, "{:>10} │{}", "", line.into_iter().collect::<String>());
    }
    let _ = writeln!(out, "{:>10} └{}", 0, "─".repeat(width));
    let _ = writeln!(
        out,
        "{:>12}{x_min:<10.2}{:>pad$}{x_max:.2}",
        "",
        "",
        pad = width.saturating_sub(20)
    );
    let legend: Vec<String> = table
        .columns
        .iter()
        .enumerate()
        .map(|(s, c)| format!("{} {c}", MARKS[s % MARKS.len()]))
        .collect();
    let _ = writeln!(out, "{:>12}legend: {}", "", legend.join("   "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    fn table() -> SeriesTable {
        let mut t = SeriesTable::new("shape", "x", vec!["up".into(), "down".into()]);
        for i in 0..=10 {
            let x = f64::from(i) / 10.0;
            t.push_row(
                x,
                vec![Summary::exact(x * 100.0), Summary::exact(100.0 - x * 100.0)],
            );
        }
        t
    }

    #[test]
    fn plot_contains_marks_and_legend() {
        let p = ascii_plot(&table(), 40, 10);
        assert!(p.contains('o'));
        assert!(p.contains('+'));
        assert!(p.contains("legend: o up   + down"));
        assert!(p.contains("shape"));
    }

    #[test]
    fn empty_table_safe() {
        let t = SeriesTable::new("empty", "x", vec!["a".into()]);
        let p = ascii_plot(&t, 40, 10);
        assert!(p.contains("(no data)"));
    }

    #[test]
    fn extremes_land_on_borders() {
        let p = ascii_plot(&table(), 40, 10);
        let lines: Vec<&str> = p.lines().collect();
        // First grid line (y = max) must hold a mark at the far right
        // (series "up" reaches its max at x = 1).
        let top = lines[2];
        assert!(top.trim_end().ends_with('o') || top.contains('+'));
    }

    #[test]
    fn degenerate_single_point() {
        let mut t = SeriesTable::new("one", "x", vec!["a".into()]);
        t.push_row(5.0, vec![Summary::exact(42.0)]);
        let p = ascii_plot(&t, 30, 6);
        assert!(p.contains('o'));
    }
}
