//! # da-harness — the experiment harness
//!
//! Regenerates every figure and table of the evaluation section of
//! *Data-Aware Multicast* (DSN 2004), plus the ablations listed in
//! DESIGN.md:
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Fig. 8 (events per group) | [`experiments::figures`] | `fig08_group_messages` |
//! | Fig. 9 (inter-group events) | [`experiments::figures`] | `fig09_intergroup` |
//! | Fig. 10 (reliability, stillborn) | [`experiments::figures`] | `fig10_reliability_stillborn` |
//! | Fig. 11 (reliability, dynamic) | [`experiments::figures`] | `fig11_reliability_dynamic` |
//! | Sec. VI-E.1/2 complexity tables | [`experiments::tables`] | `table_complexity` |
//! | Sec. VI-E.3 tuning table | [`experiments::tables`] | `table_tuning` |
//! | Parasite-freedom claim | [`experiments::parasites`] | `table_parasites` |
//! | `O(S·lnS)` scaling | [`experiments::scaling`] | `fig_scaling` |
//! | g/z/fanout/maintenance ablations | [`experiments::ablations`] | `ablations` |
//! | Live-runtime vs simulator reliability | [`experiments::live`] | `live_vs_sim` |
//!
//! Every binary accepts `--quick` for a scaled-down smoke run and writes
//! CSV + Markdown into `results/` (plus an ASCII plot on stdout).
//!
//! The building blocks are reusable: [`scenario`] runs one parameterised
//! paper scenario, [`runner`] fans trials out over worker threads,
//! [`stats`]/[`report`]/[`plot`] summarise and render.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod plot;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod stats;

use std::path::PathBuf;

/// The default output directory for experiment results: `results/` under
/// the current working directory (override with `DA_RESULTS_DIR`).
#[must_use]
pub fn results_dir() -> PathBuf {
    std::env::var_os("DA_RESULTS_DIR").map_or_else(|| PathBuf::from("results"), PathBuf::from)
}
