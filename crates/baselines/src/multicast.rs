//! Baseline (b): gossip-based **multicast** (Sec. IV-A pattern 1,
//! Sec. VI-E of the paper).
//!
//! One gossip group exists *per topic*; a subscriber of `Ta` joins the
//! group of `Ta` **and of every subtopic of `Ta`** (the dashed-arrow
//! pattern of Fig. 1). A published event of topic `Tb` is disseminated in
//! the group of `Tb` only — whose members are exactly the processes
//! interested in `Tb`, so there are no parasites and no inter-group links.
//! The price is memory: a subscriber holds one `(b+1)·ln(S')` table per
//! joined group and must track subtopic creation, which is what
//! daMulticast's two-table design eliminates.

use crate::common::{gossip_targets, DeliveryLog, InterestMap};
use da_membership::{static_init::static_topic_tables, FanoutRule};
use da_simnet::{derive_seed, rng_from_seed, Ctx, ProcessId, Protocol, WireSize};
use da_topics::TopicId;
use damulticast::{DaError, Event, EventId};
use std::collections::HashMap;

/// Wire message: the event plus the topic group it is gossiped in.
#[derive(Debug, Clone)]
pub struct McMsg {
    /// The event in flight.
    pub event: Event,
    /// The topic group the gossip is confined to.
    pub group: TopicId,
}

impl WireSize for McMsg {
    fn wire_size(&self) -> usize {
        self.event.wire_size() + 4
    }
}

/// One process of the gossip-multicast baseline.
#[derive(Debug, Clone)]
pub struct MulticastProcess {
    me: ProcessId,
    interests: InterestMap,
    /// One gossip table per joined group (own topic + all subtopics),
    /// with the per-group fanout alongside.
    tables: HashMap<TopicId, (Vec<ProcessId>, usize)>,
    log: DeliveryLog,
    pending: Vec<Event>,
    next_sequence: u64,
}

impl MulticastProcess {
    /// The process identity.
    #[must_use]
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// Queues an event for publication on the process' interest topic.
    pub fn publish(&mut self, payload: impl Into<bytes::Bytes>) -> EventId {
        let topic = self.interests.interest_of(self.me);
        let event = Event::new(self.me, self.next_sequence, topic, payload);
        self.next_sequence += 1;
        let id = event.id();
        self.pending.push(event);
        id
    }

    /// Delivery/parasite log.
    #[must_use]
    pub fn log(&self) -> &DeliveryLog {
        &self.log
    }

    /// Number of joined groups — `t` tables in the worst case (Sec.
    /// VI-E.2 (b)).
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.tables.len()
    }

    /// Total membership entries across all joined groups.
    #[must_use]
    pub fn memory_entries(&self) -> usize {
        self.tables.values().map(|(t, _)| t.len()).sum()
    }

    fn relay(&mut self, event: &Event, group: TopicId, ctx: &mut Ctx<'_, McMsg>) {
        let Some((table, fanout)) = self.tables.get(&group) else {
            return;
        };
        let targets = gossip_targets(table, *fanout, ctx.rng());
        for t in targets {
            ctx.counters().bump("mc.sent");
            ctx.send(
                t,
                McMsg {
                    event: event.clone(),
                    group,
                },
            );
        }
    }
}

impl Protocol for MulticastProcess {
    type Msg = McMsg;

    fn on_message(&mut self, _from: ProcessId, msg: McMsg, ctx: &mut Ctx<'_, McMsg>) {
        // Group membership == interest, so every receipt is wanted.
        let interested = self.interests.wants(self.me, msg.event.topic());
        if self.log.on_receive(&msg.event, interested) {
            if interested {
                ctx.counters().bump("mc.delivered");
            } else {
                // Unreachable in a correct build; kept for the comparison
                // harness's invariant check.
                ctx.counters().bump("mc.parasite");
            }
            let event = msg.event;
            self.relay(&event, msg.group, ctx);
        } else {
            ctx.counters().bump("mc.duplicate");
        }
    }

    fn on_round(&mut self, _round: u64, ctx: &mut Ctx<'_, McMsg>) {
        let pending = std::mem::take(&mut self.pending);
        for event in pending {
            if self.log.on_receive(&event, true) {
                ctx.counters().bump("mc.delivered");
            }
            // Publish in the event's own topic group only (Fig. 1,
            // pattern 1).
            self.relay(&event, event.topic(), ctx);
        }
    }
}

/// Builds the multicast population. For every topic, the group contains
/// the processes whose interest is that topic *or any supertopic* (they
/// joined downwards); each member receives a static `(b+1)·ln(S')` table
/// over that group.
///
/// # Errors
///
/// Returns [`DaError::EmptyGroup`] for an empty population.
pub fn build_multicast_network(
    interests: &InterestMap,
    b: f64,
    fanout: FanoutRule,
    seed: u64,
) -> Result<Vec<MulticastProcess>, DaError> {
    let n = interests.population();
    if n == 0 {
        return Err(DaError::EmptyGroup {
            topic: ".".to_owned(),
        });
    }
    let hierarchy = interests.hierarchy().clone();
    let mut rng = rng_from_seed(derive_seed(seed, 0x4C));
    let mut per_process: Vec<HashMap<TopicId, (Vec<ProcessId>, usize)>> = vec![HashMap::new(); n];

    for topic in hierarchy.iter() {
        let group = interests.audience(topic);
        if group.is_empty() {
            continue;
        }
        let tables =
            static_topic_tables(&group, b, &mut rng).map_err(|e| DaError::InvalidParameter {
                reason: e.to_string(),
            })?;
        let f = fanout.fanout(group.len());
        for &member in &group {
            per_process[member.index()].insert(topic, (tables[&member].clone(), f));
        }
    }

    Ok(per_process
        .into_iter()
        .enumerate()
        .map(|(i, tables)| MulticastProcess {
            me: ProcessId::from_index(i),
            interests: interests.clone(),
            tables,
            log: DeliveryLog::new(),
            pending: Vec::new(),
            next_sequence: 0,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::{Engine, SimConfig};

    fn network() -> Vec<MulticastProcess> {
        let interests = InterestMap::linear(&[2, 3, 10]);
        build_multicast_network(&interests, 3.0, FanoutRule::LnPlusC { c: 5.0 }, 1).unwrap()
    }

    #[test]
    fn subscribers_join_own_and_subtopic_groups() {
        let procs = network();
        // Root subscribers join 3 groups (root + 2 descendants), mid 2,
        // leaf 1 — the memory overhead the paper criticises.
        assert_eq!(procs[0].group_count(), 3);
        assert_eq!(procs[2].group_count(), 2);
        assert_eq!(procs[14].group_count(), 1);
        assert!(procs[0].memory_entries() > procs[14].memory_entries());
    }

    #[test]
    fn leaf_event_reaches_all_interested() {
        let mut engine = Engine::new(SimConfig::default().with_seed(2), network());
        let id = engine.process_mut(ProcessId(14)).publish("leaf");
        engine.run_until_quiescent(50);
        for i in 0..15 {
            assert!(
                engine.process(ProcessId(i)).log().has_delivered(id),
                "process {i} interested in T2 events but missed it"
            );
        }
    }

    #[test]
    fn root_event_stays_in_root_group() {
        let mut engine = Engine::new(SimConfig::default().with_seed(3), network());
        let id = engine.process_mut(ProcessId(0)).publish("root-only");
        engine.run_until_quiescent(50);
        assert!(engine.process(ProcessId(1)).log().has_delivered(id));
        for i in 2..15 {
            assert!(
                !engine.process(ProcessId(i)).log().has_delivered(id),
                "process {i} is not interested in root events"
            );
        }
    }

    #[test]
    fn no_parasites_ever() {
        let mut engine = Engine::new(SimConfig::default().with_seed(4), network());
        engine.process_mut(ProcessId(0)).publish("a");
        engine.process_mut(ProcessId(5)).publish("b");
        engine.process_mut(ProcessId(14)).publish("c");
        engine.run_until_quiescent(60);
        assert_eq!(engine.counters().get("mc.parasite"), 0);
        let total: u64 = engine.processes().map(|(_, p)| p.log().parasites()).sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn publisher_without_subscription_unreachable_groups_safe() {
        // Publishing into a group the process belongs to by construction:
        // a leaf publishes and relays only within its own group.
        let mut engine = Engine::new(SimConfig::default().with_seed(5), network());
        engine.process_mut(ProcessId(14)).publish("x");
        engine.run_until_quiescent(50);
        assert!(engine.counters().get("mc.sent") > 0);
        assert_eq!(engine.counters().get("mc.parasite"), 0);
    }

    #[test]
    fn memory_exceeds_damulticast_shape() {
        // The paper's Sec. VI-E.2: multicast memory is Σ per-level tables,
        // daMulticast's is one table + z. For a root subscriber the sum is
        // strictly larger than any single-level table.
        let procs = network();
        let root_mem = procs[0].memory_entries();
        let leaf_mem = procs[14].memory_entries();
        assert!(root_mem > leaf_mem);
    }

    #[test]
    fn empty_population_rejected() {
        let interests = InterestMap::new(
            std::sync::Arc::new(da_topics::TopicHierarchy::new()),
            vec![],
        );
        assert!(build_multicast_network(&interests, 3.0, FanoutRule::default(), 1).is_err());
    }
}
