//! Baseline (a): gossip-based **broadcast** (Sec. VI-E of the paper).
//!
//! "Each time an event must be sent, it is broadcast in the entire
//! system." One flat gossip group spans all `n` processes regardless of
//! interests; membership tables have size `(b+1)·ln(n)` and the fanout is
//! `ln(n) + c`. Every process participates in relaying *every* event, so
//! processes constantly receive events of topics they never subscribed to
//! — the parasite messages daMulticast eliminates.

use crate::common::{gossip_targets, DeliveryLog, InterestMap};
use da_membership::{static_init::static_topic_tables, FanoutRule};
use da_simnet::{derive_seed, rng_from_seed, Ctx, ProcessId, Protocol, WireSize};
use damulticast::{DaError, Event, EventId};

/// Wire message of the broadcast baseline: just the event.
#[derive(Debug, Clone)]
pub struct BcMsg(pub Event);

impl WireSize for BcMsg {
    fn wire_size(&self) -> usize {
        self.0.wire_size()
    }
}

/// One process of the gossip-broadcast baseline.
#[derive(Debug, Clone)]
pub struct BroadcastProcess {
    me: ProcessId,
    interests: InterestMap,
    table: Vec<ProcessId>,
    fanout: usize,
    log: DeliveryLog,
    pending: Vec<Event>,
    next_sequence: u64,
}

impl BroadcastProcess {
    /// The process identity.
    #[must_use]
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// Queues an event for publication on the process' interest topic.
    pub fn publish(&mut self, payload: impl Into<bytes::Bytes>) -> EventId {
        let topic = self.interests.interest_of(self.me);
        let event = Event::new(self.me, self.next_sequence, topic, payload);
        self.next_sequence += 1;
        let id = event.id();
        self.pending.push(event);
        id
    }

    /// Delivery/parasite log of this process.
    #[must_use]
    pub fn log(&self) -> &DeliveryLog {
        &self.log
    }

    /// Membership entries held (one global table).
    #[must_use]
    pub fn memory_entries(&self) -> usize {
        self.table.len()
    }

    fn relay(&mut self, event: &Event, ctx: &mut Ctx<'_, BcMsg>) {
        let targets = gossip_targets(&self.table, self.fanout, ctx.rng());
        for t in targets {
            ctx.counters().bump("bc.sent");
            ctx.send(t, BcMsg(event.clone()));
        }
    }
}

impl Protocol for BroadcastProcess {
    type Msg = BcMsg;

    fn on_message(&mut self, _from: ProcessId, msg: BcMsg, ctx: &mut Ctx<'_, BcMsg>) {
        let interested = self.interests.wants(self.me, msg.0.topic());
        if self.log.on_receive(&msg.0, interested) {
            if interested {
                ctx.counters().bump("bc.delivered");
            } else {
                ctx.counters().bump("bc.parasite");
            }
            // Broadcast relies on *everyone* relaying, parasites included.
            let event = msg.0;
            self.relay(&event, ctx);
        } else {
            ctx.counters().bump("bc.duplicate");
        }
    }

    fn on_round(&mut self, _round: u64, ctx: &mut Ctx<'_, BcMsg>) {
        let pending = std::mem::take(&mut self.pending);
        for event in pending {
            let interested = self.interests.wants(self.me, event.topic());
            if self.log.on_receive(&event, interested) && interested {
                ctx.counters().bump("bc.delivered");
            }
            self.relay(&event, ctx);
        }
    }
}

/// Builds the broadcast population: one global static gossip table per
/// process, drawn with the same `(b+1)·ln(n)` rule as daMulticast's topic
/// tables (fairness: "all approaches use the same underlying membership
/// algorithm", Sec. VI-E).
///
/// # Errors
///
/// Returns [`DaError::EmptyGroup`] for an empty population.
pub fn build_broadcast_network(
    interests: &InterestMap,
    b: f64,
    fanout: FanoutRule,
    seed: u64,
) -> Result<Vec<BroadcastProcess>, DaError> {
    let n = interests.population();
    if n == 0 {
        return Err(DaError::EmptyGroup {
            topic: ".".to_owned(),
        });
    }
    let everyone: Vec<ProcessId> = (0..n).map(ProcessId::from_index).collect();
    let mut rng = rng_from_seed(derive_seed(seed, 0xBC));
    let tables =
        static_topic_tables(&everyone, b, &mut rng).map_err(|e| DaError::InvalidParameter {
            reason: e.to_string(),
        })?;
    let fanout = fanout.fanout(n);
    Ok(everyone
        .iter()
        .map(|&me| BroadcastProcess {
            me,
            interests: interests.clone(),
            table: tables[&me].clone(),
            fanout,
            log: DeliveryLog::new(),
            pending: Vec::new(),
            next_sequence: 0,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::{Engine, SimConfig};

    fn network() -> Vec<BroadcastProcess> {
        // 2 root subscribers, 3 mid, 10 leaf.
        let interests = InterestMap::linear(&[2, 3, 10]);
        build_broadcast_network(&interests, 3.0, FanoutRule::LnPlusC { c: 5.0 }, 1).unwrap()
    }

    #[test]
    fn broadcast_reaches_every_interested_process() {
        let mut engine = Engine::new(SimConfig::default().with_seed(2), network());
        let id = engine.process_mut(ProcessId(14)).publish("leaf event");
        engine.run_until_quiescent(50);
        // Audience of a leaf event: everyone (leaf + mid + root).
        for i in 0..15 {
            assert!(
                engine.process(ProcessId(i)).log().has_delivered(id),
                "process {i} missed the broadcast"
            );
        }
    }

    #[test]
    fn broadcast_produces_parasites() {
        let mut engine = Engine::new(SimConfig::default().with_seed(3), network());
        // A ROOT-topic event interests only the 2 root subscribers; the
        // other 13 processes still receive and relay it.
        engine.process_mut(ProcessId(0)).publish("root-only news");
        engine.run_until_quiescent(50);
        let parasites: u64 = engine.processes().map(|(_, p)| p.log().parasites()).sum();
        assert!(
            parasites >= 10,
            "expected widespread parasites, got {parasites}"
        );
        assert_eq!(engine.counters().get("bc.parasite"), parasites);
    }

    #[test]
    fn parasites_still_relay() {
        let mut engine = Engine::new(SimConfig::default().with_seed(4), network());
        engine.process_mut(ProcessId(0)).publish("root-only");
        engine.run_until_quiescent(50);
        // Total sends far exceed what 2 interested processes could emit.
        let sent = engine.counters().get("bc.sent");
        assert!(sent > 40, "parasites must keep gossiping (sent {sent})");
    }

    #[test]
    fn no_double_delivery() {
        let mut engine = Engine::new(SimConfig::default().with_seed(5), network());
        engine.process_mut(ProcessId(14)).publish("x");
        engine.process_mut(ProcessId(14)).publish("y");
        engine.run_until_quiescent(50);
        for (pid, p) in engine.processes() {
            let mut ids: Vec<EventId> = p.log().delivered().iter().map(|e| e.id()).collect();
            ids.sort();
            ids.dedup();
            assert_eq!(
                ids.len(),
                p.log().delivered().len(),
                "{pid} double-delivered"
            );
        }
    }

    #[test]
    fn memory_is_global_table() {
        let procs = network();
        // (3+1)·ln(15) = 10.8 → 11 entries.
        for p in &procs {
            assert_eq!(p.memory_entries(), 11);
        }
    }

    #[test]
    fn empty_population_rejected() {
        let interests = InterestMap::new(
            std::sync::Arc::new(da_topics::TopicHierarchy::new()),
            vec![],
        );
        assert!(build_broadcast_network(&interests, 3.0, FanoutRule::default(), 1).is_err());
    }
}
