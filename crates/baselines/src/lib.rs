//! # da-baselines — the paper's three comparison algorithms
//!
//! Sec. VI-E of *Data-Aware Multicast* compares daMulticast against three
//! "a priori relevant alternative approaches", all sharing the same
//! underlying membership machinery for fairness:
//!
//! * **(a) gossip-based broadcast** ([`broadcast`]) — one flat group over
//!   the entire population; cheap tables, but every process receives and
//!   relays every event (parasites).
//! * **(b) gossip-based multicast** ([`multicast`]) — one group per topic,
//!   subscribers join their topic's group plus every subtopic's group; no
//!   parasites, but per-process memory grows with the chain depth and
//!   subscribers must track subtopic creation.
//! * **(c) hierarchical gossip-based broadcast** ([`hierarchical`]) — the
//!   interest-oblivious two-level layout of \[10\]; bounded memory, but
//!   parasites return.
//!
//! All three implement [`da_simnet::Protocol`], reuse
//! [`damulticast::Event`], and count their traffic under `bc.*`, `mc.*`
//! and `hc.*` metric labels, so the harness can put the four algorithms in
//! one table (the paper's Sec. VI-E.1–3).
//!
//! ```
//! use da_baselines::common::InterestMap;
//! use da_baselines::broadcast::build_broadcast_network;
//! use da_membership::FanoutRule;
//! use da_simnet::{Engine, SimConfig, ProcessId};
//!
//! # fn main() -> Result<(), damulticast::DaError> {
//! let interests = InterestMap::linear(&[2, 3, 10]);
//! let procs = build_broadcast_network(&interests, 3.0, FanoutRule::default(), 7)?;
//! let mut engine = Engine::new(SimConfig::default().with_seed(7), procs);
//! engine.process_mut(ProcessId(0)).publish("to everyone");
//! engine.run_until_quiescent(50);
//! assert!(engine.counters().get("bc.parasite") > 0, "broadcast pays in parasites");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broadcast;
pub mod common;
pub mod hierarchical;
pub mod multicast;

pub use broadcast::{build_broadcast_network, BcMsg, BroadcastProcess};
pub use common::{DeliveryLog, InterestMap};
pub use hierarchical::{build_hierarchical_network, HcMsg, HierarchicalProcess};
pub use multicast::{build_multicast_network, McMsg, MulticastProcess};
