//! Baseline (c): **hierarchical gossip-based broadcast** (Sec. VI-E of the
//! paper; the two-level technique of Kermarrec–Massoulié–Ganesh \[10\]).
//!
//! The population is split into `N` small groups *independent of
//! interests*. Each process keeps an intra-group view (size
//! `(b+1)·ln(m)`) and an inter-group view over foreign processes (size
//! `(b+1)·ln(N)`). An infected process gossips an event to `ln(m) + c1`
//! group-mates and `ln(N) + c2` foreign contacts, giving the Appendix's
//! `N·m(ln N + ln m + c1 + c2)` message count and `e^{-N e^{-c1} -
//! e^{-c2}}` reliability. Interests play no role, so — like flat
//! broadcast — every process receives every event: parasites galore.

use crate::common::{gossip_targets, DeliveryLog, InterestMap};
use da_membership::hierarchical::{static_hierarchical_tables, HierarchicalLayout};
use da_membership::FanoutRule;
use da_simnet::{derive_seed, rng_from_seed, Ctx, ProcessId, Protocol, WireSize};
use damulticast::{DaError, Event, EventId};

/// Wire message of the hierarchical baseline: just the event.
#[derive(Debug, Clone)]
pub struct HcMsg(pub Event);

impl WireSize for HcMsg {
    fn wire_size(&self) -> usize {
        self.0.wire_size()
    }
}

/// One process of the hierarchical gossip-broadcast baseline.
#[derive(Debug, Clone)]
pub struct HierarchicalProcess {
    me: ProcessId,
    interests: InterestMap,
    intra: Vec<ProcessId>,
    inter: Vec<ProcessId>,
    fanout_intra: usize,
    fanout_inter: usize,
    log: DeliveryLog,
    pending: Vec<Event>,
    next_sequence: u64,
}

impl HierarchicalProcess {
    /// The process identity.
    #[must_use]
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// Queues an event for publication on the process' interest topic.
    pub fn publish(&mut self, payload: impl Into<bytes::Bytes>) -> EventId {
        let topic = self.interests.interest_of(self.me);
        let event = Event::new(self.me, self.next_sequence, topic, payload);
        self.next_sequence += 1;
        let id = event.id();
        self.pending.push(event);
        id
    }

    /// Delivery/parasite log.
    #[must_use]
    pub fn log(&self) -> &DeliveryLog {
        &self.log
    }

    /// Total membership entries (intra + inter views, Sec. VI-E.2 (c)).
    #[must_use]
    pub fn memory_entries(&self) -> usize {
        self.intra.len() + self.inter.len()
    }

    fn relay(&mut self, event: &Event, ctx: &mut Ctx<'_, HcMsg>) {
        for t in gossip_targets(&self.intra, self.fanout_intra, ctx.rng()) {
            ctx.counters().bump("hc.sent_intra");
            ctx.send(t, HcMsg(event.clone()));
        }
        for t in gossip_targets(&self.inter, self.fanout_inter, ctx.rng()) {
            ctx.counters().bump("hc.sent_inter");
            ctx.send(t, HcMsg(event.clone()));
        }
    }
}

impl Protocol for HierarchicalProcess {
    type Msg = HcMsg;

    fn on_message(&mut self, _from: ProcessId, msg: HcMsg, ctx: &mut Ctx<'_, HcMsg>) {
        let interested = self.interests.wants(self.me, msg.0.topic());
        if self.log.on_receive(&msg.0, interested) {
            if interested {
                ctx.counters().bump("hc.delivered");
            } else {
                ctx.counters().bump("hc.parasite");
            }
            let event = msg.0;
            self.relay(&event, ctx);
        } else {
            ctx.counters().bump("hc.duplicate");
        }
    }

    fn on_round(&mut self, _round: u64, ctx: &mut Ctx<'_, HcMsg>) {
        let pending = std::mem::take(&mut self.pending);
        for event in pending {
            let interested = self.interests.wants(self.me, event.topic());
            if self.log.on_receive(&event, interested) && interested {
                ctx.counters().bump("hc.delivered");
            }
            self.relay(&event, ctx);
        }
    }
}

/// Builds the hierarchical population: `n_groups` interest-oblivious
/// groups with static two-level views, intra fanout from `fanout_intra`
/// evaluated at the group size `m`, inter fanout from `fanout_inter`
/// evaluated at `N`.
///
/// # Errors
///
/// Returns [`DaError::InvalidParameter`] when the partition fails (zero
/// groups or more groups than processes).
pub fn build_hierarchical_network(
    interests: &InterestMap,
    n_groups: usize,
    b: f64,
    fanout_intra: FanoutRule,
    fanout_inter: FanoutRule,
    seed: u64,
) -> Result<Vec<HierarchicalProcess>, DaError> {
    let n = interests.population();
    let mut rng = rng_from_seed(derive_seed(seed, 0x8C));
    let layout = HierarchicalLayout::partition(n, n_groups, &mut rng).map_err(|e| {
        DaError::InvalidParameter {
            reason: e.to_string(),
        }
    })?;
    let tables = static_hierarchical_tables(&layout, b, &mut rng).map_err(|e| {
        DaError::InvalidParameter {
            reason: e.to_string(),
        }
    })?;
    let m = layout.group_size();
    let f_intra = fanout_intra.fanout(m);
    let f_inter = fanout_inter.fanout(n_groups);
    Ok((0..n)
        .map(ProcessId::from_index)
        .map(|me| HierarchicalProcess {
            me,
            interests: interests.clone(),
            intra: tables.intra[&me].clone(),
            inter: tables.inter[&me].clone(),
            fanout_intra: f_intra,
            fanout_inter: f_inter,
            log: DeliveryLog::new(),
            pending: Vec::new(),
            next_sequence: 0,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::{Engine, SimConfig};

    fn network() -> Vec<HierarchicalProcess> {
        let interests = InterestMap::linear(&[2, 3, 10]);
        build_hierarchical_network(
            &interests,
            3,
            3.0,
            FanoutRule::LnPlusC { c: 3.0 },
            FanoutRule::LnPlusC { c: 2.0 },
            1,
        )
        .unwrap()
    }

    #[test]
    fn event_reaches_every_interested_process() {
        let mut engine = Engine::new(SimConfig::default().with_seed(2), network());
        let id = engine.process_mut(ProcessId(14)).publish("leaf");
        engine.run_until_quiescent(60);
        for i in 0..15 {
            assert!(
                engine.process(ProcessId(i)).log().has_delivered(id),
                "process {i} missed it"
            );
        }
    }

    #[test]
    fn interest_oblivious_grouping_breeds_parasites() {
        let mut engine = Engine::new(SimConfig::default().with_seed(3), network());
        engine.process_mut(ProcessId(0)).publish("root-only");
        engine.run_until_quiescent(60);
        let parasites: u64 = engine.processes().map(|(_, p)| p.log().parasites()).sum();
        assert!(parasites >= 10, "got {parasites}");
    }

    #[test]
    fn both_levels_generate_traffic() {
        let mut engine = Engine::new(SimConfig::default().with_seed(4), network());
        engine.process_mut(ProcessId(7)).publish("x");
        engine.run_until_quiescent(60);
        assert!(engine.counters().get("hc.sent_intra") > 0);
        assert!(engine.counters().get("hc.sent_inter") > 0);
    }

    #[test]
    fn memory_is_two_views() {
        let procs = network();
        for p in &procs {
            // m = 5 → (3+1)·ln(5) = 6.4 → capped at 4; N = 3 → (3+1)·ln 3
            // = 4.4 → capped at... inter view samples processes, capped by
            // availability, not by N.
            assert!(p.memory_entries() > 0);
            assert!(p.memory_entries() <= 4 + 5);
        }
    }

    #[test]
    fn partition_errors_propagate() {
        let interests = InterestMap::linear(&[2, 3]);
        assert!(build_hierarchical_network(
            &interests,
            0,
            3.0,
            FanoutRule::default(),
            FanoutRule::default(),
            1
        )
        .is_err());
        assert!(build_hierarchical_network(
            &interests,
            50,
            3.0,
            FanoutRule::default(),
            FanoutRule::default(),
            1
        )
        .is_err());
    }
}
