//! Machinery shared by the three baseline algorithms: interest
//! assignment, delivery/parasite bookkeeping, and gossip target sampling.

use da_simnet::ProcessId;
use da_topics::{TopicHierarchy, TopicId};
use damulticast::{Event, EventId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;
use std::sync::Arc;

/// Which topic each process is interested in (the paper's simplifying
/// assumption: one topic per process, Sec. III-A).
#[derive(Debug, Clone)]
pub struct InterestMap {
    hierarchy: Arc<TopicHierarchy>,
    interests: Vec<TopicId>,
}

impl InterestMap {
    /// Builds the map from a dense per-process interest vector
    /// (`interests[i]` is the topic of `ProcessId(i)`).
    #[must_use]
    pub fn new(hierarchy: Arc<TopicHierarchy>, interests: Vec<TopicId>) -> Self {
        InterestMap {
            hierarchy,
            interests,
        }
    }

    /// Builds the interest vector of a linear chain with the given group
    /// sizes (ids allocated top-down like
    /// [`da_membership::static_init::assign_group_members`]).
    #[must_use]
    pub fn linear(group_sizes: &[usize]) -> Self {
        let (hierarchy, ids) = TopicHierarchy::linear_chain(group_sizes.len());
        let mut interests = Vec::with_capacity(group_sizes.iter().sum());
        for (level, &size) in group_sizes.iter().enumerate() {
            interests.extend(std::iter::repeat_n(ids[level], size));
        }
        InterestMap {
            hierarchy: Arc::new(hierarchy),
            interests,
        }
    }

    /// The backing hierarchy.
    #[must_use]
    pub fn hierarchy(&self) -> &Arc<TopicHierarchy> {
        &self.hierarchy
    }

    /// Population size.
    #[must_use]
    pub fn population(&self) -> usize {
        self.interests.len()
    }

    /// The interest topic of `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is outside the population.
    #[must_use]
    pub fn interest_of(&self, pid: ProcessId) -> TopicId {
        self.interests[pid.index()]
    }

    /// True when `pid` wants events of `topic` — its interest is `topic`
    /// itself or a supertopic of it.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is outside the population.
    #[must_use]
    pub fn wants(&self, pid: ProcessId, topic: TopicId) -> bool {
        self.hierarchy.includes_or_eq(self.interest_of(pid), topic)
    }

    /// All processes interested in events of `topic`: subscribers of
    /// `topic` itself or of any supertopic.
    #[must_use]
    pub fn audience(&self, topic: TopicId) -> Vec<ProcessId> {
        (0..self.population())
            .map(ProcessId::from_index)
            .filter(|&p| self.wants(p, topic))
            .collect()
    }

    /// The interest vector as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[TopicId] {
        &self.interests
    }
}

/// Per-process delivery bookkeeping shared by all baselines: first-time
/// de-dup, delivered log, and the parasite counter that daMulticast's
/// comparison revolves around.
#[derive(Debug, Clone, Default)]
pub struct DeliveryLog {
    seen: HashSet<EventId>,
    delivered: Vec<Event>,
    parasites: u64,
}

impl DeliveryLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        DeliveryLog::default()
    }

    /// Records the arrival of `event` at a process whose interest check
    /// evaluated to `interested`. Returns `true` when this was the first
    /// receipt (the caller should then re-gossip).
    pub fn on_receive(&mut self, event: &Event, interested: bool) -> bool {
        if !self.seen.insert(event.id()) {
            return false;
        }
        if interested {
            self.delivered.push(event.clone());
        } else {
            self.parasites += 1;
        }
        true
    }

    /// Events delivered to the application.
    #[must_use]
    pub fn delivered(&self) -> &[Event] {
        &self.delivered
    }

    /// True when `id` was delivered here.
    #[must_use]
    pub fn has_delivered(&self, id: EventId) -> bool {
        self.delivered.iter().any(|e| e.id() == id)
    }

    /// Number of parasite receptions (first-time receipts of uninteresting
    /// events).
    #[must_use]
    pub fn parasites(&self) -> u64 {
        self.parasites
    }
}

/// Uniformly samples up to `k` distinct members of `pool` — the gossip
/// target draw every baseline shares.
#[must_use]
pub fn gossip_targets<R: Rng>(pool: &[ProcessId], k: usize, rng: &mut R) -> Vec<ProcessId> {
    let mut targets = pool.to_vec();
    targets.shuffle(rng);
    targets.truncate(k);
    targets
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::rng_from_seed;

    #[test]
    fn linear_interest_assignment() {
        let m = InterestMap::linear(&[2, 3]);
        assert_eq!(m.population(), 5);
        let root = m.hierarchy().root();
        assert_eq!(m.interest_of(ProcessId(0)), root);
        assert_eq!(m.interest_of(ProcessId(1)), root);
        let t1 = m.interest_of(ProcessId(2));
        assert_ne!(t1, root);
        assert_eq!(m.interest_of(ProcessId(4)), t1);
    }

    #[test]
    fn wants_follows_inclusion() {
        let m = InterestMap::linear(&[1, 1, 1]);
        let root = m.hierarchy().root();
        let t1 = m.interest_of(ProcessId(1));
        let t2 = m.interest_of(ProcessId(2));
        // Root subscriber wants everything.
        assert!(m.wants(ProcessId(0), root));
        assert!(m.wants(ProcessId(0), t1));
        assert!(m.wants(ProcessId(0), t2));
        // Leaf subscriber wants only its own topic (and subtopics).
        assert!(m.wants(ProcessId(2), t2));
        assert!(!m.wants(ProcessId(2), t1));
        assert!(!m.wants(ProcessId(2), root));
    }

    #[test]
    fn audience_of_leaf_topic_is_everyone_above() {
        let m = InterestMap::linear(&[2, 3, 4]);
        let t2 = m.interest_of(ProcessId(8));
        assert_eq!(m.audience(t2).len(), 9, "all subscribers want T2 events");
        let root = m.hierarchy().root();
        assert_eq!(
            m.audience(root).len(),
            2,
            "only root subscribers want root events"
        );
    }

    #[test]
    fn delivery_log_dedups_and_counts_parasites() {
        let mut log = DeliveryLog::new();
        let e = Event::new(ProcessId(0), 0, TopicId::ROOT, "x");
        assert!(log.on_receive(&e, true));
        assert!(!log.on_receive(&e, true), "duplicate");
        assert_eq!(log.delivered().len(), 1);
        let p = Event::new(ProcessId(0), 1, TopicId::ROOT, "y");
        assert!(log.on_receive(&p, false));
        assert_eq!(log.parasites(), 1);
        assert!(!log.has_delivered(p.id()));
    }

    #[test]
    fn gossip_targets_distinct() {
        let pool: Vec<ProcessId> = (0..20).map(ProcessId).collect();
        let mut rng = rng_from_seed(1);
        let t = gossip_targets(&pool, 8, &mut rng);
        assert_eq!(t.len(), 8);
        let set: HashSet<_> = t.iter().collect();
        assert_eq!(set.len(), 8);
        assert_eq!(gossip_targets(&pool, 100, &mut rng).len(), 20);
    }
}
