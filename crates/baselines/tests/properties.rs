//! Property tests on the baseline algorithms: structural laws of the
//! interest map and the three network builders, over random topologies.

use da_baselines::{
    build_broadcast_network, build_hierarchical_network, build_multicast_network, InterestMap,
};
use da_membership::FanoutRule;
use da_simnet::{Engine, ProcessId, SimConfig};
use proptest::prelude::*;

fn arb_sizes() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..15, 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The audience of a topic is exactly the subscribers of the topic and
    /// its ancestors; audiences are nested along the chain.
    #[test]
    fn audiences_nest_along_the_chain(sizes in arb_sizes()) {
        let m = InterestMap::linear(&sizes);
        let h = m.hierarchy().clone();
        let mut prev: Option<Vec<ProcessId>> = None;
        for id in h.iter() {
            let audience = m.audience(id);
            for &p in &audience {
                prop_assert!(h.includes_or_eq(m.interest_of(p), id));
            }
            if let Some(prev) = prev {
                // A deeper topic's audience contains the shallower one's.
                for p in prev {
                    prop_assert!(audience.contains(&p));
                }
            }
            prev = Some(audience);
        }
    }

    /// Broadcast: every process holds the same-size global table drawn
    /// from the whole population.
    #[test]
    fn broadcast_tables_global(sizes in arb_sizes(), seed in 0u64..1_000) {
        let m = InterestMap::linear(&sizes);
        let procs = build_broadcast_network(&m, 3.0, FanoutRule::default(), seed).unwrap();
        prop_assert_eq!(procs.len(), m.population());
        let expected = da_membership::kmg_view_size(3.0, m.population());
        for p in &procs {
            prop_assert_eq!(p.memory_entries(), expected.min(m.population() - 1));
        }
    }

    /// Multicast: a process joins exactly the groups of its own topic and
    /// the subtopics of it — its group count equals the number of
    /// descendants of its interest (on a linear chain: levels below it,
    /// inclusive).
    #[test]
    fn multicast_group_membership_exact(sizes in arb_sizes(), seed in 0u64..1_000) {
        let m = InterestMap::linear(&sizes);
        let procs = build_multicast_network(&m, 3.0, FanoutRule::default(), seed).unwrap();
        let h = m.hierarchy().clone();
        for p in &procs {
            let interest = m.interest_of(p.id());
            let expected = h
                .descendants(interest)
                .filter(|&t| !m.audience(t).is_empty())
                .count();
            prop_assert_eq!(p.group_count(), expected);
        }
    }

    /// Hierarchical: the partition covers the population exactly once and
    /// the per-process memory is two views.
    #[test]
    fn hierarchical_partition_lawful(
        sizes in arb_sizes(),
        groups_frac in 0.1f64..0.9,
        seed in 0u64..1_000,
    ) {
        let m = InterestMap::linear(&sizes);
        let n = m.population();
        let n_groups = ((n as f64 * groups_frac) as usize).clamp(1, n);
        let procs = build_hierarchical_network(
            &m, n_groups, 3.0, FanoutRule::default(), FanoutRule::default(), seed,
        )
        .unwrap();
        prop_assert_eq!(procs.len(), n);
        for p in &procs {
            prop_assert!(p.memory_entries() < n * 2);
        }
    }

    /// Cross-algorithm law: for any topology and any leaf event, the
    /// delivered sets of multicast and broadcast agree on reliable
    /// channels (both must blanket the audience), while their *reception*
    /// footprints differ by exactly the parasite count.
    #[test]
    fn reception_footprints_differ_by_parasites(
        sizes in prop::collection::vec(2usize..10, 2..4),
        seed in 0u64..500,
    ) {
        let m = InterestMap::linear(&sizes);
        let n = m.population();
        let root_publisher = ProcessId(0);
        let fanout = FanoutRule::LnPlusC { c: 5.0 };

        let procs = build_broadcast_network(&m, 3.0, fanout, seed).unwrap();
        let mut e = Engine::new(SimConfig::default().with_seed(seed), procs);
        e.process_mut(root_publisher).publish("prop");
        e.run_until_quiescent(96);
        let bc_delivered = e.counters().get("bc.delivered");
        let bc_parasites = e.counters().get("bc.parasite");
        // Everyone receives exactly once: delivered + parasites = n.
        prop_assert_eq!(bc_delivered + bc_parasites, n as u64);
        // Deliveries equal the audience of the root topic.
        prop_assert_eq!(bc_delivered as usize, sizes[0]);

        let procs = build_multicast_network(&m, 3.0, fanout, seed).unwrap();
        let mut e = Engine::new(SimConfig::default().with_seed(seed), procs);
        e.process_mut(root_publisher).publish("prop");
        e.run_until_quiescent(96);
        prop_assert_eq!(e.counters().get("mc.delivered") as usize, sizes[0]);
        prop_assert_eq!(e.counters().get("mc.parasite"), 0);
    }
}
