//! Property-based tests for the topic hierarchy substrate.

use da_topics::{TopicHierarchy, TopicPath};
use proptest::prelude::*;

/// Strategy producing valid topic path strings up to 5 levels deep.
fn path_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-z][a-z0-9_-]{0,6}", 0..5).prop_map(|segments| {
        if segments.is_empty() {
            ".".to_owned()
        } else {
            format!(".{}", segments.join("."))
        }
    })
}

proptest! {
    #[test]
    fn parse_roundtrips(path in path_strategy()) {
        let parsed = TopicPath::parse(&path).expect("strategy produces valid paths");
        prop_assert_eq!(parsed.as_str(), path.as_str());
        let reparsed = TopicPath::parse(parsed.as_str()).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    #[test]
    fn depth_equals_segment_count(path in path_strategy()) {
        let parsed = TopicPath::parse(&path).unwrap();
        prop_assert_eq!(parsed.depth(), parsed.segments().count());
    }

    #[test]
    fn parent_reduces_depth_by_one(path in path_strategy()) {
        let parsed = TopicPath::parse(&path).unwrap();
        if let Some(parent) = parsed.parent() {
            prop_assert_eq!(parent.depth() + 1, parsed.depth());
            prop_assert!(parent.includes(&parsed));
        } else {
            prop_assert!(parsed.is_root());
        }
    }

    #[test]
    fn inclusion_is_strict_and_antisymmetric(a in path_strategy(), b in path_strategy()) {
        let pa = TopicPath::parse(&a).unwrap();
        let pb = TopicPath::parse(&b).unwrap();
        // Irreflexive.
        prop_assert!(!pa.includes(&pa));
        // Antisymmetric.
        if pa.includes(&pb) {
            prop_assert!(!pb.includes(&pa));
        }
    }

    #[test]
    fn inclusion_is_transitive(base in path_strategy(), s1 in "[a-z]{1,4}", s2 in "[a-z]{1,4}") {
        let a = TopicPath::parse(&base).unwrap();
        let b = a.child(&s1).unwrap();
        let c = b.child(&s2).unwrap();
        prop_assert!(a.includes(&b));
        prop_assert!(b.includes(&c));
        prop_assert!(a.includes(&c));
    }

    #[test]
    fn hierarchy_matches_path_semantics(paths in prop::collection::vec(path_strategy(), 1..12)) {
        let h = TopicHierarchy::from_paths(&paths).unwrap();
        // Every inserted path resolves and its structural relations mirror
        // the string-level relations.
        for p in &paths {
            let id = h.resolve(p).expect("inserted paths resolve");
            let parsed = TopicPath::parse(p).unwrap();
            prop_assert_eq!(h.depth(id), parsed.depth());
            match parsed.parent() {
                None => prop_assert_eq!(h.parent(id), None),
                Some(pp) => {
                    let pid = h.resolve(pp.as_str()).expect("parents are auto-created");
                    prop_assert_eq!(h.parent(id), Some(pid));
                }
            }
        }
        // Pairwise inclusion agreement between hierarchy ids and paths.
        let ids: Vec<_> = h.iter().collect();
        for &x in &ids {
            for &y in &ids {
                prop_assert_eq!(
                    h.includes(x, y),
                    h.path(x).includes(h.path(y)),
                    "hierarchy and path inclusion disagree for {} vs {}",
                    h.path(x), h.path(y)
                );
            }
        }
    }

    #[test]
    fn ancestors_are_exactly_the_includers(paths in prop::collection::vec(path_strategy(), 1..10)) {
        let h = TopicHierarchy::from_paths(&paths).unwrap();
        for id in h.iter() {
            let ancestors: Vec<_> = h.ancestors(id).collect();
            for other in h.iter() {
                let is_ancestor = ancestors.contains(&other);
                prop_assert_eq!(is_ancestor, h.includes(other, id));
            }
            // Nearest-first: depths strictly decrease.
            for w in ancestors.windows(2) {
                prop_assert!(h.depth(w[0]) > h.depth(w[1]));
            }
        }
    }

    #[test]
    fn lca_is_a_common_nonstrict_ancestor(paths in prop::collection::vec(path_strategy(), 2..8)) {
        let h = TopicHierarchy::from_paths(&paths).unwrap();
        let ids: Vec<_> = h.iter().collect();
        for &a in &ids {
            for &b in &ids {
                let l = h.lowest_common_ancestor(a, b);
                prop_assert!(h.includes_or_eq(l, a));
                prop_assert!(h.includes_or_eq(l, b));
                // No deeper common ancestor exists.
                for &cand in &ids {
                    if h.includes_or_eq(cand, a)
                        && h.includes_or_eq(cand, b) {
                        prop_assert!(h.depth(cand) <= h.depth(l));
                    }
                }
            }
        }
    }

    #[test]
    fn descendants_count_matches_inclusion(paths in prop::collection::vec(path_strategy(), 1..10)) {
        let h = TopicHierarchy::from_paths(&paths).unwrap();
        for id in h.iter() {
            let via_iter = h.descendants(id).count();
            let via_inclusion = h.iter().filter(|&x| h.includes_or_eq(id, x)).count();
            prop_assert_eq!(via_iter, via_inclusion);
        }
    }
}

mod dag_properties {
    use da_topics::dag::TopicDag;
    use da_topics::TopicId;
    use proptest::prelude::*;

    /// Builds a random DAG: `n` topics, each attached to 1–3 parents drawn
    /// from the already-created topics (so edges always point upward —
    /// acyclic by construction).
    fn arb_dag() -> impl Strategy<Value = TopicDag> {
        prop::collection::vec(
            prop::collection::vec(any::<prop::sample::Index>(), 1..4),
            0..14,
        )
        .prop_map(|specs| {
            let mut dag = TopicDag::new();
            let mut ids = vec![dag.root()];
            for (i, parents) in specs.into_iter().enumerate() {
                let mut chosen: Vec<TopicId> = parents.iter().map(|ix| *ix.get(&ids)).collect();
                chosen.sort();
                chosen.dedup();
                let id = dag
                    .add_topic(&format!("t{i}"), &chosen)
                    .expect("parents exist");
                ids.push(id);
            }
            dag
        })
    }

    proptest! {
        /// Inclusion is a strict partial order: irreflexive, antisymmetric,
        /// transitive; the root includes every other topic.
        #[test]
        fn dag_inclusion_partial_order(dag in arb_dag()) {
            let ids: Vec<TopicId> = dag.topological_order();
            prop_assert_eq!(ids.len(), dag.len());
            for &a in &ids {
                prop_assert!(!dag.includes(a, a), "irreflexive");
                if a != dag.root() {
                    prop_assert!(dag.includes(dag.root(), a), "root includes all");
                }
                for &b in &ids {
                    if dag.includes(a, b) {
                        prop_assert!(!dag.includes(b, a), "antisymmetric");
                        for &c in &ids {
                            if dag.includes(b, c) {
                                prop_assert!(dag.includes(a, c), "transitive");
                            }
                        }
                    }
                }
            }
        }

        /// Topological order places every parent before its children.
        #[test]
        fn dag_topological_order_respects_edges(dag in arb_dag()) {
            let order = dag.topological_order();
            let position = |id: TopicId| order.iter().position(|&x| x == id).unwrap();
            for &id in &order {
                for &parent in dag.parents(id) {
                    prop_assert!(
                        position(parent) < position(id),
                        "parent after child in topological order"
                    );
                }
            }
        }

        /// `ancestors` agrees with `includes`, and parents/children edges
        /// are mutually consistent.
        #[test]
        fn dag_ancestors_and_edges_consistent(dag in arb_dag()) {
            let ids = dag.topological_order();
            for &id in &ids {
                let ancestors = dag.ancestors(id);
                for &other in &ids {
                    prop_assert_eq!(
                        ancestors.contains(&other),
                        dag.includes(other, id),
                        "ancestors/includes mismatch"
                    );
                }
                for &p in dag.parents(id) {
                    prop_assert!(dag.children(p).contains(&id));
                }
                for &c in dag.children(id) {
                    prop_assert!(dag.parents(c).contains(&id));
                }
            }
        }

        /// Adding a cycle-creating edge is rejected: when `a` includes `b`
        /// (i.e. `b` is a descendant of `a`), making `b` a supertopic of
        /// `a` would close a cycle and must fail; the DAG is unchanged.
        #[test]
        fn dag_rejects_cycles(dag in arb_dag()) {
            let ids = dag.topological_order();
            let mut dag = dag;
            for &a in &ids {
                for &b in &ids {
                    if a == b || dag.includes(a, b) {
                        let before = dag.parents(a).len();
                        prop_assert!(
                            dag.add_supertopic(a, b).is_err(),
                            "cycle-creating edge accepted"
                        );
                        prop_assert_eq!(dag.parents(a).len(), before);
                    }
                }
            }
        }
    }
}
