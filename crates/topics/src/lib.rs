//! # da-topics — hierarchical topic substrate
//!
//! Topic-based publish/subscribe systems organise event topics in a
//! hierarchy, e.g. `.dsn04.reviewers` where `.dsn04` is the direct
//! supertopic of `.dsn04.reviewers` and `.` (the *root topic*) includes
//! everything. The daMulticast paper (Baehni, Eugster, Guerraoui, DSN 2004)
//! exploits exactly this structure — *data-awareness* — to build dynamic
//! process groups and route events bottom-up along inclusion relations.
//!
//! This crate provides the hierarchy machinery everything else builds on:
//!
//! * [`TopicPath`] — a validated, dotted topic name (`.a.b.c`).
//! * [`TopicId`] — a cheap interned handle into a [`TopicHierarchy`].
//! * [`TopicHierarchy`] — a single-parent topic tree with O(1) parent
//!   lookup and inclusion queries.
//! * [`dag::TopicDag`] — the multiple-inheritance extension sketched in the
//!   paper's concluding remarks (a topic may have several supertopics).
//!
//! ## Example
//!
//! ```
//! use da_topics::TopicHierarchy;
//!
//! # fn main() -> Result<(), da_topics::TopicError> {
//! let mut h = TopicHierarchy::new();
//! let reviewers = h.insert(".dsn04.reviewers")?;
//! let dsn04 = h.resolve(".dsn04").expect("intermediate topic was created");
//! assert_eq!(h.parent(reviewers), Some(dsn04));
//! assert!(h.includes(dsn04, reviewers));
//! assert!(h.includes(h.root(), reviewers));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
mod error;
mod hierarchy;
mod id;
mod iter;
mod path;

pub use error::TopicError;
pub use hierarchy::{TopicHierarchy, TopicInfo};
pub use id::TopicId;
pub use iter::{Ancestors, BreadthFirst, Descendants};
pub use path::TopicPath;
