use crate::iter::{Ancestors, BreadthFirst, Descendants};
use crate::{TopicError, TopicId, TopicPath};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Metadata about one topic in a [`TopicHierarchy`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopicInfo {
    path: TopicPath,
    parent: Option<TopicId>,
    children: Vec<TopicId>,
    depth: u32,
}

impl TopicInfo {
    /// The canonical dotted path of this topic.
    #[must_use]
    pub fn path(&self) -> &TopicPath {
        &self.path
    }

    /// The direct supertopic, or `None` for the root.
    #[must_use]
    pub fn parent(&self) -> Option<TopicId> {
        self.parent
    }

    /// Direct subtopics, in insertion order.
    #[must_use]
    pub fn children(&self) -> &[TopicId] {
        &self.children
    }

    /// Distance from the root (root = 0).
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }
}

/// A single-parent topic tree with interned ids.
///
/// This is the "hierarchical disposition of topics" the paper assumes is
/// available in every topic-based publish/subscribe system. All navigation
/// (parent, children, inclusion, ancestors) is O(1) or output-sensitive.
///
/// The root topic `.` always exists with id [`TopicId::ROOT`].
///
/// ```
/// use da_topics::TopicHierarchy;
///
/// # fn main() -> Result<(), da_topics::TopicError> {
/// let mut h = TopicHierarchy::new();
/// let t2 = h.insert(".world.europe.ch")?;
/// assert_eq!(h.len(), 4); // root, .world, .world.europe, .world.europe.ch
/// assert_eq!(h.depth(t2), 3);
/// assert!(h.includes(h.root(), t2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopicHierarchy {
    nodes: Vec<TopicInfo>,
    index: HashMap<String, TopicId>,
}

impl TopicHierarchy {
    /// Creates a hierarchy containing only the root topic `.`.
    #[must_use]
    pub fn new() -> Self {
        let root = TopicInfo {
            path: TopicPath::root(),
            parent: None,
            children: Vec::new(),
            depth: 0,
        };
        let mut index = HashMap::new();
        index.insert(".".to_owned(), TopicId::ROOT);
        TopicHierarchy {
            nodes: vec![root],
            index,
        }
    }

    /// Builds a hierarchy from an iterator of dotted paths, creating all
    /// intermediate topics.
    ///
    /// # Errors
    ///
    /// Propagates [`TopicError`] from path parsing.
    pub fn from_paths<I, S>(paths: I) -> Result<Self, TopicError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut h = TopicHierarchy::new();
        for p in paths {
            h.insert(p.as_ref())?;
        }
        Ok(h)
    }

    /// Builds the linear chain `T0 ← T1 ← ... ← T(levels-1)` used throughout
    /// the paper's analysis and simulation (Sec. VI-A, VII-A), where `T0` is
    /// the root. Returns the hierarchy and the ids, index `i` = `Ti`.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0` (a hierarchy always has at least the root).
    #[must_use]
    pub fn linear_chain(levels: usize) -> (Self, Vec<TopicId>) {
        assert!(levels > 0, "a topic hierarchy has at least the root level");
        let mut h = TopicHierarchy::new();
        let mut ids = Vec::with_capacity(levels);
        ids.push(h.root());
        let mut path = TopicPath::root();
        for level in 1..levels {
            path = path
                .child(&format!("t{level}"))
                .expect("generated segments are valid");
            let id = h.insert_path(&path).expect("generated paths are valid");
            ids.push(id);
        }
        (h, ids)
    }

    /// The root topic id.
    #[must_use]
    pub fn root(&self) -> TopicId {
        TopicId::ROOT
    }

    /// Number of topics, including the root.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: the root topic is always present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Inserts a topic by dotted path, creating intermediate topics as
    /// needed. Returns the id of the (possibly pre-existing) topic.
    ///
    /// # Errors
    ///
    /// Returns a [`TopicError`] if the path fails to parse.
    pub fn insert(&mut self, path: &str) -> Result<TopicId, TopicError> {
        let parsed = TopicPath::parse(path)?;
        self.insert_path(&parsed)
    }

    /// Inserts an already-parsed path. See [`TopicHierarchy::insert`].
    ///
    /// # Errors
    ///
    /// Never fails for paths produced by [`TopicPath`] constructors; the
    /// `Result` mirrors [`TopicHierarchy::insert`] for API uniformity.
    pub fn insert_path(&mut self, path: &TopicPath) -> Result<TopicId, TopicError> {
        if let Some(&id) = self.index.get(path.as_str()) {
            return Ok(id);
        }
        // Recursively ensure the parent exists, then attach.
        let parent_path = path
            .parent()
            .expect("non-root paths have parents; root is always indexed");
        let parent_id = self.insert_path(&parent_path)?;
        let id = TopicId::from_index(self.nodes.len());
        let depth = self.nodes[parent_id.index()].depth + 1;
        self.nodes.push(TopicInfo {
            path: path.clone(),
            parent: Some(parent_id),
            children: Vec::new(),
            depth,
        });
        self.nodes[parent_id.index()].children.push(id);
        self.index.insert(path.as_str().to_owned(), id);
        Ok(id)
    }

    /// Looks up a topic id by dotted path string.
    #[must_use]
    pub fn resolve(&self, path: &str) -> Option<TopicId> {
        self.index.get(path).copied()
    }

    /// Returns the metadata for `id`, or `None` for foreign ids.
    #[must_use]
    pub fn info(&self, id: TopicId) -> Option<&TopicInfo> {
        self.nodes.get(id.index())
    }

    /// The canonical path of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this hierarchy.
    #[must_use]
    pub fn path(&self, id: TopicId) -> &TopicPath {
        self.nodes[id.index()].path()
    }

    /// The direct supertopic (`super(Ti)` in the paper), or `None` for root.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this hierarchy.
    #[must_use]
    pub fn parent(&self, id: TopicId) -> Option<TopicId> {
        self.nodes[id.index()].parent()
    }

    /// Direct subtopics of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this hierarchy.
    #[must_use]
    pub fn children(&self, id: TopicId) -> &[TopicId] {
        self.nodes[id.index()].children()
    }

    /// Distance of `id` from the root.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this hierarchy.
    #[must_use]
    pub fn depth(&self, id: TopicId) -> usize {
        self.nodes[id.index()].depth() as usize
    }

    /// True when `ancestor` strictly includes `descendant` — i.e. `ancestor`
    /// is a (direct or transitive) supertopic of `descendant`.
    ///
    /// Inclusion is the partial order the paper routes events along: an
    /// event of topic `Ti` is also an event of every topic including `Ti`.
    ///
    /// # Panics
    ///
    /// Panics if either id does not belong to this hierarchy.
    #[must_use]
    pub fn includes(&self, ancestor: TopicId, descendant: TopicId) -> bool {
        if ancestor == descendant {
            return false;
        }
        let mut cursor = self.parent(descendant);
        while let Some(t) = cursor {
            if t == ancestor {
                return true;
            }
            cursor = self.parent(t);
        }
        false
    }

    /// Non-strict inclusion: `includes(a, b) || a == b`.
    ///
    /// # Panics
    ///
    /// Panics if either id does not belong to this hierarchy.
    #[must_use]
    pub fn includes_or_eq(&self, ancestor: TopicId, descendant: TopicId) -> bool {
        ancestor == descendant || self.includes(ancestor, descendant)
    }

    /// Iterates over the strict ancestors of `id`, nearest first, ending at
    /// the root. Empty for the root itself.
    #[must_use]
    pub fn ancestors(&self, id: TopicId) -> Ancestors<'_> {
        Ancestors::new(self, id)
    }

    /// Depth-first traversal of the subtree rooted at `id` (inclusive).
    #[must_use]
    pub fn descendants(&self, id: TopicId) -> Descendants<'_> {
        Descendants::new(self, id)
    }

    /// Breadth-first traversal of the subtree rooted at `id` (inclusive).
    #[must_use]
    pub fn breadth_first(&self, id: TopicId) -> BreadthFirst<'_> {
        BreadthFirst::new(self, id)
    }

    /// Iterates over every topic id in insertion order (root first).
    pub fn iter(&self) -> impl Iterator<Item = TopicId> + '_ {
        (0..self.nodes.len()).map(TopicId::from_index)
    }

    /// Lowest common ancestor of `a` and `b` under non-strict inclusion.
    ///
    /// # Panics
    ///
    /// Panics if either id does not belong to this hierarchy.
    #[must_use]
    pub fn lowest_common_ancestor(&self, a: TopicId, b: TopicId) -> TopicId {
        let mut pa = a;
        let mut pb = b;
        while self.depth(pa) > self.depth(pb) {
            pa = self.parent(pa).expect("deeper node has a parent");
        }
        while self.depth(pb) > self.depth(pa) {
            pb = self.parent(pb).expect("deeper node has a parent");
        }
        while pa != pb {
            pa = self.parent(pa).expect("non-root while unequal");
            pb = self.parent(pb).expect("non-root while unequal");
        }
        pa
    }

    /// Validates that a foreign-looking id belongs to this hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`TopicError::UnknownTopic`] for out-of-range ids.
    pub fn check(&self, id: TopicId) -> Result<TopicId, TopicError> {
        if id.index() < self.nodes.len() {
            Ok(id)
        } else {
            Err(TopicError::UnknownTopic { id: id.0 })
        }
    }

    /// The maximal depth over all topics — `t` in the paper's analysis.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.depth() as usize)
            .max()
            .unwrap_or(0)
    }
}

impl Default for TopicHierarchy {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for TopicHierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TopicHierarchy ({} topics)", self.len())?;
        for id in self.descendants(self.root()) {
            let info = &self.nodes[id.index()];
            writeln!(
                f,
                "{:indent$}{} ({})",
                "",
                info.path(),
                id,
                indent = info.depth() as usize * 2
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TopicHierarchy {
        TopicHierarchy::from_paths([".a.b.c", ".a.d", ".e"]).unwrap()
    }

    #[test]
    fn new_has_root_only() {
        let h = TopicHierarchy::new();
        assert_eq!(h.len(), 1);
        assert_eq!(h.root(), TopicId::ROOT);
        assert!(!h.is_empty());
        assert_eq!(h.parent(h.root()), None);
        assert_eq!(h.max_depth(), 0);
    }

    #[test]
    fn insert_creates_intermediates() {
        let h = sample();
        // root, .a, .a.b, .a.b.c, .a.d, .e
        assert_eq!(h.len(), 6);
        assert!(h.resolve(".a").is_some());
        assert!(h.resolve(".a.b").is_some());
        assert!(h.resolve(".missing").is_none());
    }

    #[test]
    fn insert_is_idempotent() {
        let mut h = sample();
        let before = h.len();
        let c1 = h.insert(".a.b.c").unwrap();
        let c2 = h.insert(".a.b.c").unwrap();
        assert_eq!(c1, c2);
        assert_eq!(h.len(), before);
    }

    #[test]
    fn parent_child_links() {
        let h = sample();
        let a = h.resolve(".a").unwrap();
        let ab = h.resolve(".a.b").unwrap();
        let ad = h.resolve(".a.d").unwrap();
        assert_eq!(h.parent(ab), Some(a));
        assert_eq!(h.parent(a), Some(h.root()));
        assert!(h.children(a).contains(&ab));
        assert!(h.children(a).contains(&ad));
        assert_eq!(h.children(a).len(), 2);
    }

    #[test]
    fn depth_tracking() {
        let h = sample();
        assert_eq!(h.depth(h.root()), 0);
        assert_eq!(h.depth(h.resolve(".a").unwrap()), 1);
        assert_eq!(h.depth(h.resolve(".a.b.c").unwrap()), 3);
        assert_eq!(h.max_depth(), 3);
    }

    #[test]
    fn inclusion_properties() {
        let h = sample();
        let root = h.root();
        let a = h.resolve(".a").unwrap();
        let abc = h.resolve(".a.b.c").unwrap();
        let e = h.resolve(".e").unwrap();
        assert!(h.includes(root, a));
        assert!(h.includes(root, abc));
        assert!(h.includes(a, abc));
        assert!(!h.includes(abc, a));
        assert!(!h.includes(a, a), "strict");
        assert!(!h.includes(a, e), "unrelated");
        assert!(h.includes_or_eq(a, a));
    }

    #[test]
    fn lca() {
        let h = sample();
        let abc = h.resolve(".a.b.c").unwrap();
        let ad = h.resolve(".a.d").unwrap();
        let a = h.resolve(".a").unwrap();
        let e = h.resolve(".e").unwrap();
        assert_eq!(h.lowest_common_ancestor(abc, ad), a);
        assert_eq!(h.lowest_common_ancestor(abc, e), h.root());
        assert_eq!(h.lowest_common_ancestor(a, abc), a);
        assert_eq!(h.lowest_common_ancestor(a, a), a);
    }

    #[test]
    fn linear_chain_shape() {
        let (h, ids) = TopicHierarchy::linear_chain(3);
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[0], h.root());
        assert_eq!(h.parent(ids[1]), Some(ids[0]));
        assert_eq!(h.parent(ids[2]), Some(ids[1]));
        assert_eq!(h.max_depth(), 2);
        assert!(h.includes(ids[0], ids[2]));
    }

    #[test]
    #[should_panic(expected = "at least the root")]
    fn linear_chain_zero_panics() {
        let _ = TopicHierarchy::linear_chain(0);
    }

    #[test]
    fn check_detects_foreign_ids() {
        let h = TopicHierarchy::new();
        assert!(h.check(TopicId::ROOT).is_ok());
        assert_eq!(
            h.check(TopicId::from_index(10)),
            Err(TopicError::UnknownTopic { id: 10 })
        );
    }

    #[test]
    fn display_renders_tree() {
        let h = sample();
        let s = h.to_string();
        assert!(s.contains(".a.b.c"));
        assert!(s.contains("6 topics"));
    }

    #[test]
    fn iter_visits_all() {
        let h = sample();
        assert_eq!(h.iter().count(), h.len());
    }
}
