use std::error::Error;
use std::fmt;

/// Errors produced while parsing topic paths or manipulating hierarchies.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopicError {
    /// The path did not start with the leading `.` of the root topic.
    MissingLeadingDot,
    /// A path segment was empty (e.g. `.a..b`).
    EmptySegment {
        /// Zero-based index of the offending segment.
        index: usize,
    },
    /// A segment contained a character outside `[A-Za-z0-9_-]`.
    InvalidCharacter {
        /// The offending character.
        character: char,
        /// Zero-based index of the segment containing it.
        segment: usize,
    },
    /// A [`crate::TopicId`] did not belong to the hierarchy it was used with.
    UnknownTopic {
        /// The raw index of the foreign id.
        id: u32,
    },
    /// An edge insertion would have created a cycle in a topic DAG.
    WouldCycle {
        /// Topic that would become its own ancestor.
        id: u32,
    },
    /// A DAG edge insertion referenced a parent/child pair already linked.
    DuplicateEdge {
        /// Child topic of the duplicate edge.
        child: u32,
        /// Parent topic of the duplicate edge.
        parent: u32,
    },
}

impl fmt::Display for TopicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopicError::MissingLeadingDot => {
                write!(f, "topic path must start with '.' (the root topic)")
            }
            TopicError::EmptySegment { index } => {
                write!(f, "topic path segment {index} is empty")
            }
            TopicError::InvalidCharacter { character, segment } => write!(
                f,
                "invalid character {character:?} in topic path segment {segment}"
            ),
            TopicError::UnknownTopic { id } => {
                write!(f, "topic id {id} does not belong to this hierarchy")
            }
            TopicError::WouldCycle { id } => {
                write!(
                    f,
                    "adding this supertopic edge would make topic {id} its own ancestor"
                )
            }
            TopicError::DuplicateEdge { child, parent } => {
                write!(
                    f,
                    "topic {child} already lists topic {parent} as a supertopic"
                )
            }
        }
    }
}

impl Error for TopicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TopicError::EmptySegment { index: 2 };
        assert!(e.to_string().contains("segment 2"));
        let e = TopicError::InvalidCharacter {
            character: '!',
            segment: 0,
        };
        assert!(e.to_string().contains('!'));
        let e = TopicError::UnknownTopic { id: 7 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(TopicError::MissingLeadingDot);
        assert!(e.to_string().contains("root topic"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TopicError>();
    }
}
