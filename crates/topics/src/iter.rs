use crate::{TopicHierarchy, TopicId};
use std::collections::VecDeque;

/// Iterator over the strict ancestors of a topic, nearest first.
///
/// Produced by [`TopicHierarchy::ancestors`].
#[derive(Debug, Clone)]
pub struct Ancestors<'a> {
    hierarchy: &'a TopicHierarchy,
    cursor: Option<TopicId>,
}

impl<'a> Ancestors<'a> {
    pub(crate) fn new(hierarchy: &'a TopicHierarchy, start: TopicId) -> Self {
        Ancestors {
            hierarchy,
            cursor: hierarchy.parent(start),
        }
    }
}

impl Iterator for Ancestors<'_> {
    type Item = TopicId;

    fn next(&mut self) -> Option<Self::Item> {
        let current = self.cursor?;
        self.cursor = self.hierarchy.parent(current);
        Some(current)
    }
}

/// Depth-first (pre-order) iterator over a subtree, including its root.
///
/// Produced by [`TopicHierarchy::descendants`].
#[derive(Debug, Clone)]
pub struct Descendants<'a> {
    hierarchy: &'a TopicHierarchy,
    stack: Vec<TopicId>,
}

impl<'a> Descendants<'a> {
    pub(crate) fn new(hierarchy: &'a TopicHierarchy, start: TopicId) -> Self {
        Descendants {
            hierarchy,
            stack: vec![start],
        }
    }
}

impl Iterator for Descendants<'_> {
    type Item = TopicId;

    fn next(&mut self) -> Option<Self::Item> {
        let current = self.stack.pop()?;
        // Push children in reverse so the first child is visited first.
        for &child in self.hierarchy.children(current).iter().rev() {
            self.stack.push(child);
        }
        Some(current)
    }
}

/// Breadth-first iterator over a subtree, including its root.
///
/// Produced by [`TopicHierarchy::breadth_first`].
#[derive(Debug, Clone)]
pub struct BreadthFirst<'a> {
    hierarchy: &'a TopicHierarchy,
    queue: VecDeque<TopicId>,
}

impl<'a> BreadthFirst<'a> {
    pub(crate) fn new(hierarchy: &'a TopicHierarchy, start: TopicId) -> Self {
        let mut queue = VecDeque::new();
        queue.push_back(start);
        BreadthFirst { hierarchy, queue }
    }
}

impl Iterator for BreadthFirst<'_> {
    type Item = TopicId;

    fn next(&mut self) -> Option<Self::Item> {
        let current = self.queue.pop_front()?;
        self.queue.extend(self.hierarchy.children(current));
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use crate::TopicHierarchy;

    fn sample() -> TopicHierarchy {
        // root ── a ── b ── c
        //      │     └─ d
        //      └─ e
        TopicHierarchy::from_paths([".a.b.c", ".a.d", ".e"]).unwrap()
    }

    #[test]
    fn ancestors_of_leaf() {
        let h = sample();
        let abc = h.resolve(".a.b.c").unwrap();
        let names: Vec<String> = h.ancestors(abc).map(|t| h.path(t).to_string()).collect();
        assert_eq!(names, vec![".a.b", ".a", "."]);
    }

    #[test]
    fn ancestors_of_root_is_empty() {
        let h = sample();
        assert_eq!(h.ancestors(h.root()).count(), 0);
    }

    #[test]
    fn descendants_preorder() {
        let h = sample();
        let names: Vec<String> = h
            .descendants(h.root())
            .map(|t| h.path(t).to_string())
            .collect();
        assert_eq!(names, vec![".", ".a", ".a.b", ".a.b.c", ".a.d", ".e"]);
    }

    #[test]
    fn descendants_of_subtree() {
        let h = sample();
        let a = h.resolve(".a").unwrap();
        let names: Vec<String> = h.descendants(a).map(|t| h.path(t).to_string()).collect();
        assert_eq!(names, vec![".a", ".a.b", ".a.b.c", ".a.d"]);
    }

    #[test]
    fn breadth_first_levels() {
        let h = sample();
        let names: Vec<String> = h
            .breadth_first(h.root())
            .map(|t| h.path(t).to_string())
            .collect();
        assert_eq!(names, vec![".", ".a", ".e", ".a.b", ".a.d", ".a.b.c"]);
    }

    #[test]
    fn iterators_agree_on_count() {
        let h = sample();
        assert_eq!(
            h.descendants(h.root()).count(),
            h.breadth_first(h.root()).count()
        );
        assert_eq!(h.descendants(h.root()).count(), h.len());
    }
}
