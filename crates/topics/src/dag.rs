//! Multiple-inheritance topic graphs.
//!
//! The paper's concluding remarks note that a topic may have several direct
//! supertopics ("multiple inheritance") and that daMulticast supports this
//! "by adding a supertopic table for each supertopic". This module provides
//! the substrate for that extension: a rooted DAG of topics where inclusion
//! is reachability.

use crate::{TopicError, TopicId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};

/// A rooted directed acyclic graph of topics supporting multiple direct
/// supertopics per topic.
///
/// Node 0 is always the root. Every non-root topic has at least one parent;
/// inclusion (`includes`) is reachability through parent edges. Used by the
/// multiple-inheritance extension of daMulticast
/// (`damulticast::multi_super`).
///
/// ```
/// use da_topics::dag::TopicDag;
///
/// # fn main() -> Result<(), da_topics::TopicError> {
/// let mut g = TopicDag::new();
/// let sports = g.add_topic("sports", &[])?;       // parent defaults to root
/// let europe = g.add_topic("europe", &[])?;
/// let football = g.add_topic("football", &[sports, europe])?;
/// assert!(g.includes(sports, football));
/// assert!(g.includes(europe, football));
/// assert_eq!(g.parents(football).len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopicDag {
    names: Vec<String>,
    parents: Vec<Vec<TopicId>>,
    children: Vec<Vec<TopicId>>,
}

impl TopicDag {
    /// Creates a DAG containing only the root topic.
    #[must_use]
    pub fn new() -> Self {
        TopicDag {
            names: vec![".".to_owned()],
            parents: vec![Vec::new()],
            children: vec![Vec::new()],
        }
    }

    /// The root topic id.
    #[must_use]
    pub fn root(&self) -> TopicId {
        TopicId::ROOT
    }

    /// Number of topics including the root.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Always false: the root is always present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Adds a topic with the given display name and direct supertopics.
    /// An empty `supertopics` slice attaches the topic to the root.
    ///
    /// # Errors
    ///
    /// Returns [`TopicError::UnknownTopic`] if any parent id is foreign.
    pub fn add_topic(
        &mut self,
        name: &str,
        supertopics: &[TopicId],
    ) -> Result<TopicId, TopicError> {
        for &p in supertopics {
            self.check(p)?;
        }
        let id = TopicId::from_index(self.names.len());
        self.names.push(name.to_owned());
        let effective: Vec<TopicId> = if supertopics.is_empty() {
            vec![self.root()]
        } else {
            let mut unique: Vec<TopicId> = Vec::with_capacity(supertopics.len());
            for &p in supertopics {
                if !unique.contains(&p) {
                    unique.push(p);
                }
            }
            unique
        };
        for &p in &effective {
            self.children[p.index()].push(id);
        }
        self.parents.push(effective);
        self.children.push(Vec::new());
        Ok(id)
    }

    /// Adds an extra supertopic edge `child → parent`.
    ///
    /// # Errors
    ///
    /// * [`TopicError::UnknownTopic`] for foreign ids.
    /// * [`TopicError::DuplicateEdge`] when the edge already exists.
    /// * [`TopicError::WouldCycle`] when `parent` is a descendant of
    ///   `child` (the edge would create a cycle).
    pub fn add_supertopic(&mut self, child: TopicId, parent: TopicId) -> Result<(), TopicError> {
        self.check(child)?;
        self.check(parent)?;
        if self.parents[child.index()].contains(&parent) {
            return Err(TopicError::DuplicateEdge {
                child: child.index() as u32,
                parent: parent.index() as u32,
            });
        }
        if child == parent || self.includes(child, parent) {
            return Err(TopicError::WouldCycle {
                id: child.index() as u32,
            });
        }
        self.parents[child.index()].push(parent);
        self.children[parent.index()].push(child);
        Ok(())
    }

    /// Display name of a topic.
    ///
    /// # Panics
    ///
    /// Panics if `id` is foreign.
    #[must_use]
    pub fn name(&self, id: TopicId) -> &str {
        &self.names[id.index()]
    }

    /// Direct supertopics of `id` (empty only for the root).
    ///
    /// # Panics
    ///
    /// Panics if `id` is foreign.
    #[must_use]
    pub fn parents(&self, id: TopicId) -> &[TopicId] {
        &self.parents[id.index()]
    }

    /// Direct subtopics of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is foreign.
    #[must_use]
    pub fn children(&self, id: TopicId) -> &[TopicId] {
        &self.children[id.index()]
    }

    /// Strict inclusion: true when `ancestor` is reachable from
    /// `descendant` through parent edges.
    ///
    /// # Panics
    ///
    /// Panics if either id is foreign.
    #[must_use]
    pub fn includes(&self, ancestor: TopicId, descendant: TopicId) -> bool {
        if ancestor == descendant {
            return false;
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from_iter(self.parents[descendant.index()].iter().copied());
        while let Some(t) = queue.pop_front() {
            if t == ancestor {
                return true;
            }
            if seen.insert(t) {
                queue.extend(self.parents[t.index()].iter().copied());
            }
        }
        false
    }

    /// All strict ancestors of `id` in breadth-first order (deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `id` is foreign.
    #[must_use]
    pub fn ancestors(&self, id: TopicId) -> Vec<TopicId> {
        let mut seen = HashSet::new();
        let mut order = Vec::new();
        let mut queue = VecDeque::from_iter(self.parents[id.index()].iter().copied());
        while let Some(t) = queue.pop_front() {
            if seen.insert(t) {
                order.push(t);
                queue.extend(self.parents[t.index()].iter().copied());
            }
        }
        order
    }

    /// Topological order over all topics (parents before children).
    #[must_use]
    pub fn topological_order(&self) -> Vec<TopicId> {
        let mut indegree: HashMap<usize, usize> = (0..self.len())
            .map(|i| (i, self.parents[i].len()))
            .collect();
        let mut queue: VecDeque<usize> = (0..self.len()).filter(|i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(i) = queue.pop_front() {
            order.push(TopicId::from_index(i));
            for &c in &self.children[i] {
                let d = indegree
                    .get_mut(&c.index())
                    .expect("all nodes have an indegree entry");
                *d -= 1;
                if *d == 0 {
                    queue.push_back(c.index());
                }
            }
        }
        order
    }

    fn check(&self, id: TopicId) -> Result<(), TopicError> {
        if id.index() < self.names.len() {
            Ok(())
        } else {
            Err(TopicError::UnknownTopic {
                id: id.index() as u32,
            })
        }
    }
}

impl Default for TopicDag {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_dag_has_root() {
        let g = TopicDag::new();
        assert_eq!(g.len(), 1);
        assert_eq!(g.name(g.root()), ".");
        assert!(g.parents(g.root()).is_empty());
    }

    #[test]
    fn default_parent_is_root() {
        let mut g = TopicDag::new();
        let a = g.add_topic("a", &[]).unwrap();
        assert_eq!(g.parents(a), &[g.root()]);
        assert!(g.includes(g.root(), a));
    }

    #[test]
    fn diamond_inclusion() {
        let mut g = TopicDag::new();
        let a = g.add_topic("a", &[]).unwrap();
        let b = g.add_topic("b", &[]).unwrap();
        let c = g.add_topic("c", &[a, b]).unwrap();
        assert!(g.includes(a, c));
        assert!(g.includes(b, c));
        assert!(g.includes(g.root(), c));
        assert!(!g.includes(c, a));
        assert!(!g.includes(a, b));
    }

    #[test]
    fn cycle_rejected() {
        let mut g = TopicDag::new();
        let a = g.add_topic("a", &[]).unwrap();
        let b = g.add_topic("b", &[a]).unwrap();
        assert!(matches!(
            g.add_supertopic(a, b),
            Err(TopicError::WouldCycle { .. })
        ));
        assert!(matches!(
            g.add_supertopic(a, a),
            Err(TopicError::WouldCycle { .. })
        ));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = TopicDag::new();
        let a = g.add_topic("a", &[]).unwrap();
        let b = g.add_topic("b", &[a]).unwrap();
        assert!(matches!(
            g.add_supertopic(b, a),
            Err(TopicError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn duplicate_parents_deduplicated_on_add() {
        let mut g = TopicDag::new();
        let a = g.add_topic("a", &[]).unwrap();
        let b = g.add_topic("b", &[a, a]).unwrap();
        assert_eq!(g.parents(b).len(), 1);
    }

    #[test]
    fn foreign_ids_rejected() {
        let mut g = TopicDag::new();
        let foreign = TopicId::from_index(99);
        assert!(matches!(
            g.add_topic("x", &[foreign]),
            Err(TopicError::UnknownTopic { .. })
        ));
    }

    #[test]
    fn ancestors_deduplicated() {
        let mut g = TopicDag::new();
        let a = g.add_topic("a", &[]).unwrap();
        let b = g.add_topic("b", &[]).unwrap();
        let c = g.add_topic("c", &[a, b]).unwrap();
        let anc = g.ancestors(c);
        assert_eq!(anc.len(), 3); // a, b, root — root only once
        assert!(anc.contains(&g.root()));
    }

    #[test]
    fn topological_order_respects_edges() {
        let mut g = TopicDag::new();
        let a = g.add_topic("a", &[]).unwrap();
        let b = g.add_topic("b", &[a]).unwrap();
        let c = g.add_topic("c", &[a, b]).unwrap();
        let order = g.topological_order();
        let pos = |t: TopicId| order.iter().position(|&x| x == t).unwrap();
        assert!(pos(g.root()) < pos(a));
        assert!(pos(a) < pos(b));
        assert!(pos(b) < pos(c));
        assert_eq!(order.len(), g.len());
    }

    #[test]
    fn extra_supertopic_edge() {
        let mut g = TopicDag::new();
        let a = g.add_topic("a", &[]).unwrap();
        let b = g.add_topic("b", &[]).unwrap();
        let c = g.add_topic("c", &[a]).unwrap();
        assert!(!g.includes(b, c));
        g.add_supertopic(c, b).unwrap();
        assert!(g.includes(b, c));
        assert_eq!(g.parents(c).len(), 2);
    }
}
