use serde::{Deserialize, Serialize};
use std::fmt;

/// A cheap, copyable handle identifying a topic inside a
/// [`TopicHierarchy`](crate::TopicHierarchy).
///
/// Ids are dense indices assigned in insertion order; the root topic is
/// always [`TopicId::ROOT`]. Ids are only meaningful relative to the
/// hierarchy (or DAG) that produced them.
///
/// ```
/// use da_topics::{TopicHierarchy, TopicId};
/// let h = TopicHierarchy::new();
/// assert_eq!(h.root(), TopicId::ROOT);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TopicId(pub(crate) u32);

impl TopicId {
    /// The root topic `.` — present in every hierarchy, includes all topics.
    pub const ROOT: TopicId = TopicId(0);

    /// Returns the raw dense index of this id.
    ///
    /// Useful for indexing side tables that parallel a hierarchy's topics.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a raw index previously obtained via
    /// [`TopicId::index`].
    ///
    /// The caller is responsible for only using indices that came from the
    /// same hierarchy; foreign indices are detected (as
    /// [`TopicError::UnknownTopic`](crate::TopicError::UnknownTopic)) by
    /// hierarchy methods, not here.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        TopicId(u32::try_from(index).expect("topic index exceeds u32::MAX"))
    }

    /// True if this is the root topic id.
    #[must_use]
    pub fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_index_zero() {
        assert_eq!(TopicId::ROOT.index(), 0);
        assert!(TopicId::ROOT.is_root());
        assert!(!TopicId::from_index(3).is_root());
    }

    #[test]
    fn index_roundtrip() {
        for i in [0usize, 1, 17, 4096] {
            assert_eq!(TopicId::from_index(i).index(), i);
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(TopicId::ROOT.to_string(), "T0");
        assert_eq!(TopicId::from_index(42).to_string(), "T42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(TopicId::from_index(1) < TopicId::from_index(2));
    }
}
