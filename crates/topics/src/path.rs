use crate::TopicError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A validated, dotted topic name such as `.dsn04.reviewers`.
///
/// Grammar:
///
/// * the root topic is the single dot `.` (zero segments);
/// * every other path is a leading dot followed by one or more dot-separated
///   non-empty segments over the alphabet `[A-Za-z0-9_-]`.
///
/// `TopicPath` stores the canonical string plus segment boundaries, so both
/// string access and segment iteration are cheap.
///
/// ```
/// use da_topics::TopicPath;
///
/// # fn main() -> Result<(), da_topics::TopicError> {
/// let p: TopicPath = ".dsn04.reviewers".parse()?;
/// assert_eq!(p.segments().collect::<Vec<_>>(), ["dsn04", "reviewers"]);
/// assert_eq!(p.parent().unwrap().as_str(), ".dsn04");
/// assert_eq!(p.depth(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct TopicPath {
    canonical: String,
}

impl TopicPath {
    /// The root topic path `.`.
    #[must_use]
    pub fn root() -> Self {
        TopicPath {
            canonical: ".".to_owned(),
        }
    }

    /// Parses a dotted topic path.
    ///
    /// # Errors
    ///
    /// Returns [`TopicError::MissingLeadingDot`] when the string does not
    /// start with `.`, [`TopicError::EmptySegment`] for `..` runs or a
    /// trailing dot, and [`TopicError::InvalidCharacter`] for characters
    /// outside `[A-Za-z0-9_-]`.
    pub fn parse(input: &str) -> Result<Self, TopicError> {
        if !input.starts_with('.') {
            return Err(TopicError::MissingLeadingDot);
        }
        if input == "." {
            return Ok(Self::root());
        }
        for (index, segment) in input[1..].split('.').enumerate() {
            if segment.is_empty() {
                return Err(TopicError::EmptySegment { index });
            }
            if let Some(character) = segment
                .chars()
                .find(|c| !(c.is_ascii_alphanumeric() || *c == '_' || *c == '-'))
            {
                return Err(TopicError::InvalidCharacter {
                    character,
                    segment: index,
                });
            }
        }
        Ok(TopicPath {
            canonical: input.to_owned(),
        })
    }

    /// The canonical string form (`.` for root, `.a.b` otherwise).
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.canonical
    }

    /// True for the root topic `.`.
    #[must_use]
    pub fn is_root(&self) -> bool {
        self.canonical == "."
    }

    /// Number of segments; the root has depth 0, `.a.b` has depth 2.
    #[must_use]
    pub fn depth(&self) -> usize {
        if self.is_root() {
            0
        } else {
            self.canonical.bytes().filter(|b| *b == b'.').count()
        }
    }

    /// Iterates over the path's segments, outermost first.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        let body = if self.is_root() {
            ""
        } else {
            &self.canonical[1..]
        };
        body.split('.').filter(|s| !s.is_empty())
    }

    /// The last segment, or `None` for the root.
    #[must_use]
    pub fn leaf(&self) -> Option<&str> {
        self.segments().last()
    }

    /// The direct supertopic path, or `None` for the root.
    ///
    /// `.a.b` → `.a`; `.a` → `.` (the root).
    #[must_use]
    pub fn parent(&self) -> Option<TopicPath> {
        if self.is_root() {
            return None;
        }
        let cut = self
            .canonical
            .rfind('.')
            .expect("non-root topic paths contain at least one dot");
        if cut == 0 {
            Some(TopicPath::root())
        } else {
            Some(TopicPath {
                canonical: self.canonical[..cut].to_owned(),
            })
        }
    }

    /// Appends one segment, returning the child path.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`TopicPath::parse`] when `segment` is
    /// empty or contains invalid characters.
    pub fn child(&self, segment: &str) -> Result<TopicPath, TopicError> {
        if segment.is_empty() {
            return Err(TopicError::EmptySegment {
                index: self.depth(),
            });
        }
        if let Some(character) = segment
            .chars()
            .find(|c| !(c.is_ascii_alphanumeric() || *c == '_' || *c == '-'))
        {
            return Err(TopicError::InvalidCharacter {
                character,
                segment: self.depth(),
            });
        }
        let canonical = if self.is_root() {
            format!(".{segment}")
        } else {
            format!("{}.{segment}", self.canonical)
        };
        Ok(TopicPath { canonical })
    }

    /// True when `self` is a strict supertopic of `other` — i.e. `self`
    /// *includes* `other` in the paper's terminology.
    ///
    /// The root includes every other topic; no topic includes itself.
    #[must_use]
    pub fn includes(&self, other: &TopicPath) -> bool {
        if self == other {
            return false;
        }
        if self.is_root() {
            return true;
        }
        other.canonical.starts_with(&self.canonical)
            && other.canonical.as_bytes().get(self.canonical.len()) == Some(&b'.')
    }

    /// Iterates over all strict supertopic paths, nearest first, ending at
    /// the root.
    #[must_use]
    pub fn ancestors(&self) -> Vec<TopicPath> {
        let mut out = Vec::with_capacity(self.depth());
        let mut cursor = self.parent();
        while let Some(p) = cursor {
            cursor = p.parent();
            out.push(p);
        }
        out
    }
}

impl FromStr for TopicPath {
    type Err = TopicError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TopicPath::parse(s)
    }
}

impl fmt::Display for TopicPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical)
    }
}

impl TryFrom<String> for TopicPath {
    type Error = TopicError;

    fn try_from(value: String) -> Result<Self, Self::Error> {
        TopicPath::parse(&value)
    }
}

impl From<TopicPath> for String {
    fn from(value: TopicPath) -> Self {
        value.canonical
    }
}

impl AsRef<str> for TopicPath {
    fn as_ref(&self) -> &str {
        &self.canonical
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_root() {
        let p = TopicPath::parse(".").unwrap();
        assert!(p.is_root());
        assert_eq!(p.depth(), 0);
        assert_eq!(p.segments().count(), 0);
        assert_eq!(p.leaf(), None);
        assert_eq!(p.parent(), None);
    }

    #[test]
    fn parses_nested() {
        let p = TopicPath::parse(".dsn04.reviewers").unwrap();
        assert_eq!(p.depth(), 2);
        assert_eq!(p.leaf(), Some("reviewers"));
        assert_eq!(p.to_string(), ".dsn04.reviewers");
    }

    #[test]
    fn rejects_missing_dot() {
        assert_eq!(TopicPath::parse("abc"), Err(TopicError::MissingLeadingDot));
        assert_eq!(TopicPath::parse(""), Err(TopicError::MissingLeadingDot));
    }

    #[test]
    fn rejects_empty_segments() {
        assert_eq!(
            TopicPath::parse(".a..b"),
            Err(TopicError::EmptySegment { index: 1 })
        );
        assert_eq!(
            TopicPath::parse(".a."),
            Err(TopicError::EmptySegment { index: 1 })
        );
        assert_eq!(
            TopicPath::parse(".."),
            Err(TopicError::EmptySegment { index: 0 })
        );
    }

    #[test]
    fn rejects_invalid_characters() {
        assert_eq!(
            TopicPath::parse(".a.b!c"),
            Err(TopicError::InvalidCharacter {
                character: '!',
                segment: 1
            })
        );
        assert!(TopicPath::parse(".ok-topic_1").is_ok());
    }

    #[test]
    fn parent_chain() {
        let p = TopicPath::parse(".a.b.c").unwrap();
        let b = p.parent().unwrap();
        assert_eq!(b.as_str(), ".a.b");
        let a = b.parent().unwrap();
        assert_eq!(a.as_str(), ".a");
        let root = a.parent().unwrap();
        assert!(root.is_root());
        assert_eq!(root.parent(), None);
    }

    #[test]
    fn child_construction() {
        let root = TopicPath::root();
        let a = root.child("a").unwrap();
        assert_eq!(a.as_str(), ".a");
        let ab = a.child("b").unwrap();
        assert_eq!(ab.as_str(), ".a.b");
        assert!(a.child("").is_err());
        assert!(a.child("x.y").is_err());
    }

    #[test]
    fn inclusion_is_strict_prefix() {
        let root = TopicPath::root();
        let a = TopicPath::parse(".a").unwrap();
        let ab = TopicPath::parse(".a.b").unwrap();
        let abc = TopicPath::parse(".a.bc").unwrap();
        assert!(root.includes(&a));
        assert!(root.includes(&ab));
        assert!(a.includes(&ab));
        assert!(!a.includes(&a), "inclusion is strict");
        assert!(!ab.includes(&a), "inclusion is not symmetric");
        assert!(!a.includes(&abc) || abc.as_str().starts_with(".a."));
        // `.a` does not include `.ab` even though it is a string prefix.
        let ab2 = TopicPath::parse(".ab").unwrap();
        assert!(!a.includes(&ab2));
    }

    #[test]
    fn ancestors_nearest_first() {
        let p = TopicPath::parse(".a.b.c").unwrap();
        let anc: Vec<String> = p.ancestors().iter().map(|x| x.to_string()).collect();
        assert_eq!(anc, vec![".a.b", ".a", "."]);
    }

    #[test]
    fn fromstr_and_conversions() {
        let p: TopicPath = ".x".parse().unwrap();
        assert_eq!(String::from(p.clone()), ".x");
        assert_eq!(TopicPath::try_from(".x".to_owned()).unwrap(), p);
        assert_eq!(p.as_ref(), ".x");
    }
}
