//! The topology layer of the network fault model: named nodes,
//! process→node placement, per-link channel overrides, and first-class
//! network partitions.
//!
//! The paper's evaluation assumes i.i.d. per-edge loss; real deployments
//! fail in *correlated* ways — a rack uplink degrades every flow that
//! crosses it, and a split-brain partition silences whole sites at once.
//! This module extends the substrate-neutral fault surface with exactly
//! that structure while keeping the uniform case untouched:
//!
//! * [`NetworkModel`] is the one type both substrates consume. Its
//!   uniform case wraps a plain [`ChannelConfig`] unchanged (and
//!   `From<ChannelConfig>` makes the upgrade implicit).
//! * [`Topology`] names nodes (racks, sites, datacenters), places
//!   processes on them, and overrides the channel per directed node
//!   link — single-hop static routing: the link between two processes is
//!   the link between their nodes.
//! * [`PartitionSchedule`] scripts split-brain windows: islands of nodes
//!   are *cut* at a tick and optionally *healed* at a later tick.
//!   Messages crossing an active cut are dropped at send time.
//!
//! Determinism contract: whether a send is severed is a pure function of
//! the two placements and the send tick — it consumes **zero**
//! randomness — and the surviving sends draw their loss/latency fate
//! through the unchanged pinned-draw-order machinery of
//! [`ChannelConfig::sample_fate`]. One seed therefore yields identical
//! link fates on the simulator and the live runtime.

use crate::channel::{ChannelConfig, ChannelFate};
use crate::process::ProcessId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of one topology node (a rack, site, or datacenter —
/// whatever unit fails together). Dense indices into
/// [`Topology::with_nodes`]'s name list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node as a vector index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A named network topology: nodes, process placement, and per-link
/// channel overrides (single-hop static routing).
///
/// Processes not explicitly placed live on node 0, so a topology is
/// always total. Links are *directed*; [`Topology::with_symmetric_link`]
/// installs both directions at once.
///
/// ```
/// use da_core::channel::ChannelConfig;
/// use da_core::topology::{NodeId, Topology};
/// use da_core::ProcessId;
///
/// let wan = ChannelConfig::reliable().with_success_probability(0.9);
/// let topo = Topology::with_nodes(["dc-a", "dc-b"])
///     .with_placement_range(0..4, NodeId(1))
///     .with_symmetric_link(NodeId(0), NodeId(1), wan);
///
/// assert_eq!(topo.node_of(ProcessId(2)), NodeId(1));
/// assert_eq!(topo.node_of(ProcessId(9)), NodeId(0), "unplaced → node 0");
/// assert_eq!(topo.link(NodeId(1), NodeId(0)), Some(wan));
/// assert_eq!(topo.link(NodeId(0), NodeId(0)), None, "intra-node: default");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Node names, indexed by [`NodeId`].
    names: Vec<String>,
    /// `placement[i]` is the node hosting `ProcessId(i)`; shorter than
    /// the population means the tail lives on node 0.
    placement: Vec<NodeId>,
    /// Directed per-link channel overrides, keyed by `(from, to)` node
    /// pair. Links are few (racks, not processes), so a flat vector
    /// beats a map.
    links: Vec<(NodeId, NodeId, ChannelConfig)>,
}

impl Topology {
    /// A topology over the given node names (`NodeId(i)` is the i-th
    /// name). Every process starts on node 0.
    #[must_use]
    pub fn with_nodes<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert!(!names.is_empty(), "a topology needs at least one node");
        Topology {
            names,
            placement: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.names.len()
    }

    /// The name of `node`.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    #[must_use]
    pub fn name(&self, node: NodeId) -> &str {
        &self.names[node.index()]
    }

    /// The node named `name`, if any.
    #[must_use]
    pub fn node_named(&self, name: &str) -> Option<NodeId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| NodeId(i as u32))
    }

    /// Places one process on `node`.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    #[must_use]
    pub fn with_placement(mut self, pid: ProcessId, node: NodeId) -> Self {
        assert!(node.index() < self.names.len(), "unknown node {node}");
        if self.placement.len() <= pid.index() {
            self.placement.resize(pid.index() + 1, NodeId(0));
        }
        self.placement[pid.index()] = node;
        self
    }

    /// Places every process with index in `pids` on `node`.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    #[must_use]
    pub fn with_placement_range(mut self, pids: std::ops::Range<usize>, node: NodeId) -> Self {
        assert!(node.index() < self.names.len(), "unknown node {node}");
        if self.placement.len() < pids.end {
            self.placement.resize(pids.end, NodeId(0));
        }
        for i in pids {
            self.placement[i] = node;
        }
        self
    }

    /// Overrides the channel of the directed link `from → to`
    /// (replacing any previous override for that pair).
    ///
    /// # Panics
    ///
    /// Panics when either node is out of range.
    #[must_use]
    pub fn with_link(mut self, from: NodeId, to: NodeId, channel: ChannelConfig) -> Self {
        assert!(from.index() < self.names.len(), "unknown node {from}");
        assert!(to.index() < self.names.len(), "unknown node {to}");
        if let Some(entry) = self
            .links
            .iter_mut()
            .find(|(f, t, _)| (*f, *t) == (from, to))
        {
            entry.2 = channel;
        } else {
            self.links.push((from, to, channel));
        }
        self
    }

    /// Overrides both directions of the link between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics when either node is out of range.
    #[must_use]
    pub fn with_symmetric_link(self, a: NodeId, b: NodeId, channel: ChannelConfig) -> Self {
        self.with_link(a, b, channel).with_link(b, a, channel)
    }

    /// The node hosting `pid` (node 0 when unplaced).
    #[must_use]
    pub fn node_of(&self, pid: ProcessId) -> NodeId {
        self.placement
            .get(pid.index())
            .copied()
            .unwrap_or(NodeId(0))
    }

    /// The channel override of the directed link `from → to`, if any.
    #[must_use]
    pub fn link(&self, from: NodeId, to: NodeId) -> Option<ChannelConfig> {
        self.links
            .iter()
            .find(|(f, t, _)| (*f, *t) == (from, to))
            .map(|(_, _, c)| *c)
    }

    /// Iterates over the directed link overrides.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, NodeId, ChannelConfig)> + '_ {
        self.links.iter().copied()
    }

    /// True when every link override is a perfect channel (the topology
    /// then cannot make the model lossier or slower than its default).
    #[must_use]
    pub fn links_are_perfect(&self) -> bool {
        self.links.iter().all(|(_, _, c)| c.is_perfect())
    }

    /// The fastest delivery any link override can sample, or `None`
    /// when there are no overrides.
    #[must_use]
    pub fn min_link_latency(&self) -> Option<u64> {
        self.links.iter().map(|(_, _, c)| c.min_latency()).min()
    }

    /// The slowest delivery any link override can sample, or `None`
    /// when there are no overrides.
    #[must_use]
    pub fn max_link_latency(&self) -> Option<u64> {
        self.links.iter().map(|(_, _, c)| c.max_latency()).max()
    }
}

/// One scripted split-brain window: the listed islands of nodes are
/// mutually cut from `cut_at` (inclusive) until `heal_at` (exclusive),
/// or forever when `heal_at` is `None`.
///
/// Nodes not listed in any island are unaffected — they keep talking to
/// everyone. Two nodes in the *same* island also keep talking.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// The mutually isolated node groups.
    pub islands: Vec<Vec<NodeId>>,
    /// First tick at which the cut applies.
    pub cut_at: u64,
    /// First tick at which the cut no longer applies (`None` = never
    /// heals).
    pub heal_at: Option<u64>,
}

impl Partition {
    /// A cut of `islands` starting at `cut_at` that never heals (chain
    /// [`Partition::heal_at`] to script the re-merge).
    #[must_use]
    pub fn cut(islands: Vec<Vec<NodeId>>, cut_at: u64) -> Self {
        Partition {
            islands,
            cut_at,
            heal_at: None,
        }
    }

    /// Heals the cut at `tick` (the first tick at which traffic flows
    /// again).
    ///
    /// # Panics
    ///
    /// Panics when `tick` is not after the cut.
    #[must_use]
    pub fn heal_at(mut self, tick: u64) -> Self {
        assert!(tick > self.cut_at, "a partition must heal after its cut");
        self.heal_at = Some(tick);
        self
    }

    /// True when the cut is in force at `tick`.
    #[must_use]
    pub fn active_at(&self, tick: u64) -> bool {
        tick >= self.cut_at && self.heal_at.is_none_or(|h| tick < h)
    }

    /// The island containing `node`, if listed.
    fn island_of(&self, node: NodeId) -> Option<usize> {
        self.islands.iter().position(|i| i.contains(&node))
    }

    /// True when this partition severs `a` from `b` at `tick`: the cut
    /// is active and the nodes sit in different islands.
    #[must_use]
    pub fn severs(&self, a: NodeId, b: NodeId, tick: u64) -> bool {
        if !self.active_at(tick) {
            return false;
        }
        match (self.island_of(a), self.island_of(b)) {
            (Some(ia), Some(ib)) => ia != ib,
            _ => false,
        }
    }
}

/// The scripted partition history of one run: zero or more
/// [`Partition`] windows (the aura `partition_network` /
/// `heal_partitions` shape, expressed as a schedule so both substrates
/// replay it identically from the config alone).
///
/// ```
/// use da_core::topology::{NodeId, Partition, PartitionSchedule};
///
/// let (a, b) = (NodeId(0), NodeId(1));
/// let schedule = PartitionSchedule::none()
///     .with_partition(Partition::cut(vec![vec![a], vec![b]], 5).heal_at(9));
///
/// assert!(!schedule.severed(a, b, 4), "before the cut");
/// assert!(schedule.severed(a, b, 5), "split-brain");
/// assert!(schedule.severed(b, a, 8), "cuts are symmetric");
/// assert!(!schedule.severed(a, b, 9), "healed");
/// assert!(!schedule.severed(a, a, 6), "same island always talks");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionSchedule {
    partitions: Vec<Partition>,
}

impl PartitionSchedule {
    /// The empty schedule: the network never partitions.
    #[must_use]
    pub fn none() -> Self {
        PartitionSchedule::default()
    }

    /// Adds one scripted partition window.
    #[must_use]
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partitions.push(partition);
        self
    }

    /// True when no partition is scripted at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// The scripted partition windows.
    #[must_use]
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// True when any scripted partition severs `a` from `b` at `tick`.
    /// A pure function of its arguments — no randomness is consumed.
    #[must_use]
    pub fn severed(&self, a: NodeId, b: NodeId, tick: u64) -> bool {
        self.partitions.iter().any(|p| p.severs(a, b, tick))
    }
}

/// One scripted message drop: kill the `occurrence`-th send (0-based)
/// from `from` to `to` at `tick`, deterministically and without
/// consuming any randomness.
///
/// This is how a model-checking counterexample replays a "the channel
/// happened to lose exactly that envelope" branch as an ordinary fault
/// config: the explorer records which send it dropped, and the replay
/// kills the same send on either substrate with zero RNG involvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptedDrop {
    /// The round/tick the doomed send happens at.
    pub tick: u64,
    /// Sending process.
    pub from: ProcessId,
    /// Receiving process.
    pub to: ProcessId,
    /// Which of the `(from, to)` sends at `tick` dies, 0-based in send
    /// order. A process that sends the same peer three messages in one
    /// round has occurrences 0, 1, 2.
    pub occurrence: u32,
}

/// A deterministic drop script: a set of [`ScriptedDrop`]s applied on
/// top of the channel model, before any randomness is consumed for the
/// matched send.
///
/// Empty schedules are free: [`NetworkModel::decide_fate`] with an
/// empty schedule is byte-for-byte [`NetworkModel::sample_fate`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DropSchedule {
    drops: Vec<ScriptedDrop>,
}

impl DropSchedule {
    /// The empty schedule — no scripted drops.
    #[must_use]
    pub fn none() -> Self {
        DropSchedule::default()
    }

    /// Adds one scripted drop.
    #[must_use]
    pub fn with_drop(mut self, drop: ScriptedDrop) -> Self {
        self.drops.push(drop);
        self
    }

    /// Adds many scripted drops.
    #[must_use]
    pub fn with_drops<I: IntoIterator<Item = ScriptedDrop>>(mut self, drops: I) -> Self {
        self.drops.extend(drops);
        self
    }

    /// True when nothing is scripted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.drops.is_empty()
    }

    /// Number of scripted drops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.drops.len()
    }

    /// The scripted drops, in insertion order.
    #[must_use]
    pub fn drops(&self) -> &[ScriptedDrop] {
        &self.drops
    }

    /// True when this schedule kills the `occurrence`-th send from
    /// `from` to `to` at `tick`. Pure — consumes zero randomness.
    #[must_use]
    pub fn kills(&self, from: ProcessId, to: ProcessId, tick: u64, occurrence: u32) -> bool {
        self.drops
            .iter()
            .any(|d| d.tick == tick && d.from == from && d.to == to && d.occurrence == occurrence)
    }
}

/// The fate of one send under the full network model: severed by a
/// partition (zero randomness), lost on the channel, or delivered after
/// a sampled latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFate {
    /// A partition severs the sender's node from the receiver's node at
    /// the send tick. Decided without consuming any randomness.
    Severed,
    /// The (effective) channel dropped the message.
    Lost,
    /// The message survives and arrives `latency` rounds/ticks after it
    /// was sent.
    Deliver {
        /// Rounds/ticks between send and delivery (≥ 1).
        latency: u64,
    },
}

/// The complete network fault model both substrates consume: a default
/// [`ChannelConfig`], an optional [`Topology`] of per-link overrides,
/// and a [`PartitionSchedule`].
///
/// The uniform case wraps a plain channel unchanged —
/// `NetworkModel::uniform(c)` (or `c.into()`) behaves byte-for-byte
/// like the bare `ChannelConfig` did: same draws, same order, same
/// fates.
///
/// ```
/// use da_core::channel::{ChannelConfig, ChannelFate};
/// use da_core::topology::{NetFate, NetworkModel, NodeId, Partition, PartitionSchedule, Topology};
/// use da_core::seed::rng_from_seed;
/// use da_core::ProcessId;
///
/// // Uniform case: one channel everywhere, no partitions.
/// let uniform = NetworkModel::uniform(ChannelConfig::paper_default());
/// assert!((uniform.channel.success_probability - 0.85).abs() < 1e-12);
///
/// // Two sites; processes 0..3 on "edge"; the WAN link is slower, and a
/// // partition cuts the sites apart for ticks 4..8.
/// let wan = ChannelConfig::reliable().with_latency(da_core::channel::Latency::Fixed(2));
/// let model = NetworkModel::uniform(ChannelConfig::reliable())
///     .with_topology(
///         Topology::with_nodes(["core", "edge"])
///             .with_placement_range(0..3, NodeId(1))
///             .with_symmetric_link(NodeId(0), NodeId(1), wan),
///     )
///     .with_partitions(PartitionSchedule::none().with_partition(
///         Partition::cut(vec![vec![NodeId(0)], vec![NodeId(1)]], 4).heal_at(8),
///     ));
///
/// let (edge, core) = (ProcessId(1), ProcessId(7));
/// let mut rng = rng_from_seed(1);
/// // Before the cut, the cross-site send uses the WAN override.
/// assert_eq!(
///     model.sample_fate(edge, core, 0, &mut rng),
///     NetFate::Deliver { latency: 2 },
/// );
/// // During the cut it is severed — deterministically, with no draw.
/// assert_eq!(model.sample_fate(edge, core, 5, &mut rng), NetFate::Severed);
/// // Intra-site traffic never notices: default channel, still flowing.
/// assert_eq!(
///     model.sample_fate(ProcessId(0), ProcessId(2), 5, &mut rng),
///     NetFate::Deliver { latency: 1 },
/// );
/// // After the heal the WAN link carries traffic again.
/// assert_eq!(
///     model.sample_fate(edge, core, 8, &mut rng),
///     NetFate::Deliver { latency: 2 },
/// );
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// The default channel: used for every link without a topology
    /// override (and for everything in the uniform case).
    pub channel: ChannelConfig,
    /// Node placement and per-link overrides; `None` is the uniform
    /// model.
    pub topology: Option<Topology>,
    /// Scripted split-brain windows.
    pub partitions: PartitionSchedule,
    /// Scripted per-send drops (model-checking counterexample replays).
    /// Empty by default; consulted only by [`NetworkModel::decide_fate`].
    pub drops: DropSchedule,
}

impl NetworkModel {
    /// The uniform model: `channel` everywhere, no topology, no
    /// partitions — exactly the pre-topology fault surface.
    #[must_use]
    pub fn uniform(channel: ChannelConfig) -> Self {
        NetworkModel {
            channel,
            topology: None,
            partitions: PartitionSchedule::none(),
            drops: DropSchedule::none(),
        }
    }

    /// Installs the topology (placement + link overrides).
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Installs the partition schedule.
    #[must_use]
    pub fn with_partitions(mut self, partitions: PartitionSchedule) -> Self {
        self.partitions = partitions;
        self
    }

    /// Replaces the default channel.
    #[must_use]
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.channel = channel;
        self
    }

    /// Installs a scripted drop schedule (see [`DropSchedule`]).
    #[must_use]
    pub fn with_drops(mut self, drops: DropSchedule) -> Self {
        self.drops = drops;
        self
    }

    /// The node hosting `pid` (node 0 without a topology).
    #[must_use]
    pub fn node_of(&self, pid: ProcessId) -> NodeId {
        self.topology.as_ref().map_or(NodeId(0), |t| t.node_of(pid))
    }

    /// True when a scripted partition severs `from`'s node from `to`'s
    /// node at `tick`. Pure — consumes zero randomness — so both
    /// substrates decide it identically from the config alone.
    #[must_use]
    pub fn severed(&self, from: ProcessId, to: ProcessId, tick: u64) -> bool {
        if self.partitions.is_empty() {
            return false;
        }
        self.partitions
            .severed(self.node_of(from), self.node_of(to), tick)
    }

    /// The effective channel between two processes: the override of the
    /// link between their nodes, or the default channel (single-hop
    /// static routing).
    #[must_use]
    pub fn channel_between(&self, from: ProcessId, to: ProcessId) -> ChannelConfig {
        match &self.topology {
            Some(t) => t
                .link(t.node_of(from), t.node_of(to))
                .unwrap_or(self.channel),
            None => self.channel,
        }
    }

    /// Draws the fate of one send at `tick` from `rng`.
    ///
    /// Draw-order contract (deterministic replays depend on it): the
    /// partition check comes first and consumes **zero** randomness;
    /// surviving sends then follow [`ChannelConfig::sample_fate`]'s
    /// pinned order on the effective link channel — at most one
    /// Bernoulli draw, then at most one latency draw.
    pub fn sample_fate<R: Rng>(
        &self,
        from: ProcessId,
        to: ProcessId,
        tick: u64,
        rng: &mut R,
    ) -> NetFate {
        if self.severed(from, to, tick) {
            return NetFate::Severed;
        }
        match self.channel_between(from, to).sample_fate(rng) {
            ChannelFate::Lost => NetFate::Lost,
            ChannelFate::Deliver { latency } => NetFate::Deliver { latency },
        }
    }

    /// Decides the fate of the `occurrence`-th send from `from` to `to`
    /// at `tick`, consulting the scripted [`DropSchedule`] before any
    /// randomness.
    ///
    /// Precedence (part of the replay contract): partition check first
    /// (pure), then the drop script (pure — a matched send is `Lost`
    /// without consuming a single draw), then the usual
    /// [`sample_fate`](Self::sample_fate) channel draws. With an empty
    /// schedule this is byte-for-byte `sample_fate`: same draws, same
    /// order, same fates — callers with no script may keep calling
    /// either.
    pub fn decide_fate<R: Rng>(
        &self,
        from: ProcessId,
        to: ProcessId,
        tick: u64,
        occurrence: u32,
        rng: &mut R,
    ) -> NetFate {
        if self.severed(from, to, tick) {
            return NetFate::Severed;
        }
        if !self.drops.is_empty() && self.drops.kills(from, to, tick, occurrence) {
            return NetFate::Lost;
        }
        match self.channel_between(from, to).sample_fate(rng) {
            ChannelFate::Lost => NetFate::Lost,
            ChannelFate::Deliver { latency } => NetFate::Deliver { latency },
        }
    }

    /// Enumerates every fate a send from `from` to `to` at `tick` could
    /// receive — the enumeration twin of [`sample_fate`](Self::sample_fate),
    /// used by the bounded model checker as the branching factor of a
    /// send.
    ///
    /// A severed pair has the single fate `Severed` (partitions are
    /// scripted, not chosen). Otherwise the effective link channel's
    /// [`ChannelConfig::enumerate_fates`] is lifted: `Lost` first iff
    /// the link is lossy, then `Deliver` per reachable latency,
    /// ascending. The scripted drop schedule is *not* consulted — it
    /// exists to replay one specific branch, not to widen the set.
    #[must_use]
    pub fn enumerate_fates(&self, from: ProcessId, to: ProcessId, tick: u64) -> Vec<NetFate> {
        if self.severed(from, to, tick) {
            return vec![NetFate::Severed];
        }
        self.channel_between(from, to)
            .enumerate_fates()
            .into_iter()
            .map(|fate| match fate {
                ChannelFate::Lost => NetFate::Lost,
                ChannelFate::Deliver { latency } => NetFate::Deliver { latency },
            })
            .collect()
    }

    /// The fastest delivery any link of this model can ever sample —
    /// the drift bound a bounded-lag scheduler may exploit. The minimum
    /// of the default channel's floor and every override's.
    #[must_use]
    pub fn min_latency(&self) -> u64 {
        let base = self.channel.min_latency();
        match self.topology.as_ref().and_then(Topology::min_link_latency) {
            Some(link) => base.min(link),
            None => base,
        }
    }

    /// The slowest delivery any link of this model can ever sample —
    /// how far into the future a surviving send can land, and therefore
    /// the horizon a fixed-capacity delay wheel must cover. The maximum
    /// of the default channel's ceiling and every override's. (Every
    /// latency model is bounded, so this is always finite; a wheel
    /// still keeps a spillover path for envelopes scheduled past the
    /// capacity it was sized with.)
    #[must_use]
    pub fn max_latency(&self) -> u64 {
        let base = self.channel.max_latency();
        match self.topology.as_ref().and_then(Topology::max_link_latency) {
            Some(link) => base.max(link),
            None => base,
        }
    }

    /// True when the model can neither lose, delay, nor sever anything:
    /// the default channel and every override are perfect, no partition
    /// is scripted, and no drop is scripted — the configuration under
    /// which a faulty transport must behave byte-for-byte like a
    /// perfect one.
    #[must_use]
    pub fn is_perfect(&self) -> bool {
        self.channel.is_perfect()
            && self.partitions.is_empty()
            && self.drops.is_empty()
            && self
                .topology
                .as_ref()
                .is_none_or(Topology::links_are_perfect)
    }
}

impl From<ChannelConfig> for NetworkModel {
    fn from(channel: ChannelConfig) -> Self {
        NetworkModel::uniform(channel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Latency;
    use crate::seed::rng_from_seed;

    #[test]
    fn uniform_model_matches_bare_channel_draw_for_draw() {
        // The uniform case must consume the exact randomness the bare
        // channel consumed, so upgrading configs cannot shift streams.
        let channel =
            ChannelConfig::paper_default().with_latency(Latency::UniformRounds { min: 1, max: 4 });
        let model = NetworkModel::uniform(channel);
        let mut a = rng_from_seed(3);
        let mut b = rng_from_seed(3);
        for tick in 0..256 {
            let bare = channel.sample_fate(&mut a);
            let net = model.sample_fate(ProcessId(0), ProcessId(1), tick, &mut b);
            match (bare, net) {
                (ChannelFate::Lost, NetFate::Lost) => {}
                (ChannelFate::Deliver { latency: x }, NetFate::Deliver { latency: y }) => {
                    assert_eq!(x, y);
                }
                other => panic!("fates diverged: {other:?}"),
            }
        }
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "streams stayed in lockstep");
    }

    #[test]
    fn severed_sends_consume_no_randomness() {
        let model = NetworkModel::uniform(ChannelConfig::paper_default())
            .with_topology(Topology::with_nodes(["a", "b"]).with_placement(ProcessId(1), NodeId(1)))
            .with_partitions(
                PartitionSchedule::none()
                    .with_partition(Partition::cut(vec![vec![NodeId(0)], vec![NodeId(1)]], 0)),
            );
        let mut a = rng_from_seed(7);
        let b = rng_from_seed(7);
        for tick in 0..64 {
            assert_eq!(
                model.sample_fate(ProcessId(0), ProcessId(1), tick, &mut a),
                NetFate::Severed
            );
        }
        let mut b = b;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "no draw was consumed");
    }

    #[test]
    fn partitions_are_node_pair_and_tick_pure() {
        let cut = Partition::cut(vec![vec![NodeId(0)], vec![NodeId(1), NodeId(2)]], 3).heal_at(7);
        assert!(!cut.active_at(2));
        assert!(cut.active_at(3));
        assert!(cut.active_at(6));
        assert!(!cut.active_at(7));
        assert!(cut.severs(NodeId(0), NodeId(2), 5));
        assert!(!cut.severs(NodeId(1), NodeId(2), 5), "same island");
        assert!(!cut.severs(NodeId(0), NodeId(3), 5), "unlisted node");
        let forever = Partition::cut(vec![vec![NodeId(0)], vec![NodeId(1)]], 2);
        assert!(forever.active_at(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "heal after its cut")]
    fn heal_must_follow_cut() {
        let _ = Partition::cut(vec![], 5).heal_at(5);
    }

    #[test]
    fn overlapping_windows_union() {
        let schedule = PartitionSchedule::none()
            .with_partition(Partition::cut(vec![vec![NodeId(0)], vec![NodeId(1)]], 0).heal_at(4))
            .with_partition(Partition::cut(vec![vec![NodeId(0)], vec![NodeId(1)]], 8).heal_at(10));
        assert!(schedule.severed(NodeId(0), NodeId(1), 2));
        assert!(
            !schedule.severed(NodeId(0), NodeId(1), 5),
            "between windows"
        );
        assert!(schedule.severed(NodeId(0), NodeId(1), 9));
        assert_eq!(schedule.partitions().len(), 2);
    }

    #[test]
    fn link_overrides_route_by_placement() {
        let wan = ChannelConfig::reliable().with_success_probability(0.5);
        let model = NetworkModel::uniform(ChannelConfig::reliable()).with_topology(
            Topology::with_nodes(["core", "edge"])
                .with_placement_range(4..8, NodeId(1))
                .with_symmetric_link(NodeId(0), NodeId(1), wan),
        );
        assert_eq!(model.channel_between(ProcessId(0), ProcessId(5)), wan);
        assert_eq!(model.channel_between(ProcessId(6), ProcessId(1)), wan);
        assert_eq!(
            model.channel_between(ProcessId(0), ProcessId(1)),
            ChannelConfig::reliable(),
            "intra-node traffic uses the default"
        );
        assert!(!model.is_perfect(), "a lossy link spoils perfection");
    }

    #[test]
    fn with_link_replaces_existing_override() {
        let first = ChannelConfig::reliable().with_success_probability(0.5);
        let second = ChannelConfig::reliable().with_success_probability(0.9);
        let topo = Topology::with_nodes(["a", "b"])
            .with_link(NodeId(0), NodeId(1), first)
            .with_link(NodeId(0), NodeId(1), second);
        assert_eq!(topo.link(NodeId(0), NodeId(1)), Some(second));
        assert_eq!(topo.links().count(), 1);
    }

    #[test]
    fn min_latency_spans_default_and_overrides() {
        let slow = ChannelConfig::reliable().with_latency(Latency::Fixed(4));
        let fast = ChannelConfig::reliable().with_latency(Latency::Fixed(2));
        let model = NetworkModel::uniform(slow)
            .with_topology(Topology::with_nodes(["a", "b"]).with_link(NodeId(0), NodeId(1), fast));
        assert_eq!(model.min_latency(), 2, "the fastest link bounds the lag");
        assert_eq!(NetworkModel::uniform(slow).min_latency(), 4);
    }

    #[test]
    fn max_latency_spans_default_and_overrides() {
        let fast = ChannelConfig::reliable().with_latency(Latency::Fixed(2));
        let slow =
            ChannelConfig::reliable().with_latency(Latency::UniformRounds { min: 1, max: 6 });
        let model = NetworkModel::uniform(fast)
            .with_topology(Topology::with_nodes(["a", "b"]).with_link(NodeId(0), NodeId(1), slow));
        assert_eq!(model.max_latency(), 6, "the slowest link sizes the wheel");
        assert_eq!(NetworkModel::uniform(fast).max_latency(), 2);
        assert_eq!(
            NetworkModel::uniform(ChannelConfig::reliable()).max_latency(),
            1
        );
    }

    #[test]
    fn perfection_requires_no_partitions() {
        let perfect = NetworkModel::uniform(ChannelConfig::reliable());
        assert!(perfect.is_perfect());
        let cut = perfect.clone().with_partitions(
            PartitionSchedule::none()
                .with_partition(Partition::cut(vec![vec![NodeId(0)], vec![NodeId(1)]], 9)),
        );
        assert!(!cut.is_perfect(), "a scripted cut must disable fast paths");
        assert!(NetworkModel::from(ChannelConfig::reliable()).is_perfect());
    }

    #[test]
    fn decide_fate_with_empty_script_is_sample_fate_draw_for_draw() {
        // decide_fate must be a conservative extension: with no drops
        // scripted, the exact same draws happen in the exact same order,
        // so wiring it into either substrate cannot shift any stream.
        let model = NetworkModel::uniform(
            ChannelConfig::default()
                .with_success_probability(0.6)
                .with_latency(Latency::UniformRounds { min: 1, max: 4 }),
        );
        let mut a = rng_from_seed(21);
        let mut b = rng_from_seed(21);
        for tick in 0..256 {
            let sampled = model.sample_fate(ProcessId(0), ProcessId(1), tick, &mut a);
            let decided = model.decide_fate(ProcessId(0), ProcessId(1), tick, tick as u32, &mut b);
            assert_eq!(sampled, decided);
        }
        use rand::Rng as _;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "streams stayed in step");
    }

    #[test]
    fn scripted_drop_kills_exact_occurrence_without_randomness() {
        let model = NetworkModel::uniform(ChannelConfig::reliable()).with_drops(
            DropSchedule::none().with_drop(ScriptedDrop {
                tick: 3,
                from: ProcessId(0),
                to: ProcessId(1),
                occurrence: 1,
            }),
        );
        assert!(!model.is_perfect(), "a scripted drop disables fast paths");
        let mut rng = rng_from_seed(4);
        // Occurrence 0 sails through; occurrence 1 dies; occurrence 2 sails.
        assert_eq!(
            model.decide_fate(ProcessId(0), ProcessId(1), 3, 0, &mut rng),
            NetFate::Deliver { latency: 1 },
        );
        assert_eq!(
            model.decide_fate(ProcessId(0), ProcessId(1), 3, 1, &mut rng),
            NetFate::Lost,
        );
        assert_eq!(
            model.decide_fate(ProcessId(0), ProcessId(1), 3, 2, &mut rng),
            NetFate::Deliver { latency: 1 },
        );
        // Wrong tick, wrong direction: untouched.
        assert_eq!(
            model.decide_fate(ProcessId(0), ProcessId(1), 4, 1, &mut rng),
            NetFate::Deliver { latency: 1 },
        );
        assert_eq!(
            model.decide_fate(ProcessId(1), ProcessId(0), 3, 1, &mut rng),
            NetFate::Deliver { latency: 1 },
        );
        // A perfect channel consumes zero randomness either way, so the
        // stream never moved.
        use rand::Rng as _;
        let mut fresh = rng_from_seed(4);
        assert_eq!(rng.gen::<u64>(), fresh.gen::<u64>());
    }

    #[test]
    fn enumerate_fates_respects_partitions_and_links() {
        let lossy = ChannelConfig::default().with_success_probability(0.85);
        let model = NetworkModel::uniform(ChannelConfig::reliable())
            .with_topology(
                Topology::with_nodes(["a", "b"])
                    .with_placement_range(0..1, NodeId(0))
                    .with_placement_range(1..2, NodeId(1))
                    .with_link(NodeId(0), NodeId(1), lossy),
            )
            .with_partitions(PartitionSchedule::none().with_partition(
                Partition::cut(vec![vec![NodeId(0)], vec![NodeId(1)]], 5).heal_at(7),
            ));
        // Severed window: exactly one, deterministic fate.
        assert_eq!(
            model.enumerate_fates(ProcessId(0), ProcessId(1), 5),
            vec![NetFate::Severed],
        );
        // Outside the window, the lossy override branches two ways.
        assert_eq!(
            model.enumerate_fates(ProcessId(0), ProcessId(1), 0),
            vec![NetFate::Lost, NetFate::Deliver { latency: 1 }],
        );
        // Intra-node traffic rides the perfect default: no branching.
        assert_eq!(
            model.enumerate_fates(ProcessId(0), ProcessId(0), 5),
            vec![NetFate::Deliver { latency: 1 }],
        );
    }

    #[test]
    fn node_names_resolve() {
        let topo = Topology::with_nodes(["alpha", "beta"]);
        assert_eq!(topo.nodes(), 2);
        assert_eq!(topo.name(NodeId(1)), "beta");
        assert_eq!(topo.node_named("alpha"), Some(NodeId(0)));
        assert_eq!(topo.node_named("gamma"), None);
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(NodeId(3).index(), 3);
    }
}
