//! Failure models — shared by both execution substrates.
//!
//! The paper evaluates two regimes (Sec. VII):
//!
//! * **stillborn** (Figs. 8–10): "the state of a process (alive/failed) is
//!   set at the beginning of the simulation and does not change" — a fixed
//!   fraction of processes is crashed before round 0;
//! * **per-observer** (Fig. 11): "a process can appear to be failed for a
//!   process while appearing alive for another one (to simulate a weakly
//!   consistent membership algorithm)" — aliveness is sampled
//!   independently per transmission, so failures are uncorrelated across
//!   observers.
//!
//! [`FailureModel`] is the declarative description; [`FailurePlan`] is its
//! materialisation for one seeded run. Like `crate::channel`, the module
//! sits below both substrates: `da_simnet::Engine` applies the plan at
//! the start of every round, and `da_runtime`'s `LifecycleController`
//! applies the *identical* plan per worker stripe. To that end every
//! per-round draw is **positionally deterministic**: churn transitions
//! are sampled from a stateless `(pid, round)` hash
//! ([`FailurePlan::churn_flips`]), never from a shared sequential RNG
//! stream, so the fate of process 7 at round 12 is the same number on a
//! single-threaded simulator and on any worker striping of the live
//! pool.
//!
//! The draw order within [`FailureModel::materialize`] is pinned:
//! stillborn selection shuffles the population on the dedicated
//! `0xFA11` stream, per-observer sampling owns the `0x0B5E` stream, and
//! churn hangs off the `0xC402` stream family — changing any of these
//! silently re-rolls committed experiment numbers.

use crate::process::ProcessId;
use crate::seed::{derive_seed, rng_from_seed};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Seed stream tag of the stillborn population shuffle.
const STILLBORN_STREAM: u64 = 0xFA11;
/// Seed stream tag of per-observer aliveness sampling.
const OBSERVER_STREAM: u64 = 0x0B5E;
/// Seed stream tag rooting the per-`(pid, round)` churn draws.
const CHURN_STREAM: u64 = 0xC402;

/// A scripted liveness transition used by [`FailureModel::Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fate {
    /// Round at the start of which the transition applies.
    pub round: u64,
    /// The affected process.
    pub pid: ProcessId,
    /// `true` = crash, `false` = recover.
    pub crash: bool,
}

/// Declarative failure model of a run (simulated or live).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum FailureModel {
    /// All processes stay alive for the whole run.
    #[default]
    None,
    /// A uniformly random `1 - alive_fraction` of the population is crashed
    /// before round 0 and never recovers (paper Figs. 8–10).
    Stillborn {
        /// Fraction of processes that remain alive, in `[0, 1]`.
        alive_fraction: f64,
    },
    /// Every transmission independently observes its target as failed with
    /// probability `1 - alive_fraction` (paper Fig. 11). No process is
    /// globally crashed.
    PerObserver {
        /// Per-observation probability that the target appears alive.
        alive_fraction: f64,
    },
    /// Scripted crash/recovery events, applied at the start of their
    /// round. Fates naming processes outside the materialised population
    /// are dropped at [`FailureModel::materialize`] time, so both
    /// substrates see the identical (valid) schedule.
    Schedule(Vec<Fate>),
    /// Continuous churn (the paper's model assumption: "processes might
    /// crash and recover", Sec. III-A): at the start of every round each
    /// alive process crashes with `crash_probability` and each crashed
    /// process recovers with `recover_probability`. The stationary alive
    /// fraction is `recover / (crash + recover)`.
    Churn {
        /// Per-round probability that an alive process crashes.
        crash_probability: f64,
        /// Per-round probability that a crashed process recovers.
        recover_probability: f64,
    },
}

impl FailureModel {
    /// Materialises the model for a run over `population` processes,
    /// deriving all randomness from `seed`.
    #[must_use]
    pub fn materialize(&self, population: usize, seed: u64) -> FailurePlan {
        let base = FailurePlan {
            initially_crashed: Vec::new(),
            observer_alive_probability: None,
            schedule: Vec::new(),
            churn: None,
            observation_seed: seed,
            churn_seed: derive_seed(seed, CHURN_STREAM),
        };
        match self {
            FailureModel::None => base,
            FailureModel::Stillborn { alive_fraction } => {
                let alive_fraction = alive_fraction.clamp(0.0, 1.0);
                let mut rng = rng_from_seed(derive_seed(seed, STILLBORN_STREAM));
                let mut ids: Vec<ProcessId> = (0..population).map(ProcessId::from_index).collect();
                ids.shuffle(&mut rng);
                // Round half-up so alive_fraction=1.0 keeps everyone alive
                // and 0.0 crashes everyone.
                let crashed = population - (alive_fraction * population as f64).round() as usize;
                ids.truncate(crashed);
                FailurePlan {
                    initially_crashed: ids,
                    ..base
                }
            }
            FailureModel::PerObserver { alive_fraction } => FailurePlan {
                observer_alive_probability: Some(alive_fraction.clamp(0.0, 1.0)),
                observation_seed: derive_seed(seed, OBSERVER_STREAM),
                ..base
            },
            FailureModel::Schedule(fates) => {
                let mut schedule = fates.clone();
                // Out-of-range fates are dropped here, once, so the
                // simulator and the runtime cannot diverge on them.
                schedule.retain(|f| f.pid.index() < population);
                schedule.sort_by_key(|f| (f.round, f.pid));
                FailurePlan { schedule, ..base }
            }
            FailureModel::Churn {
                crash_probability,
                recover_probability,
            } => FailurePlan {
                churn: Some(ChurnRates {
                    crash: crash_probability.clamp(0.0, 1.0),
                    recover: recover_probability.clamp(0.0, 1.0),
                }),
                ..base
            },
        }
    }
}

/// Per-round crash/recovery probabilities of the churn model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnRates {
    /// Per-round crash probability of alive processes.
    pub crash: f64,
    /// Per-round recovery probability of crashed processes.
    pub recover: f64,
}

/// The outcome of one process's plan transitions for one round — what
/// [`FailurePlan::transition`] reports back to the substrate applying
/// the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Liveness entering the rest of the round, after scripted fates
    /// and the churn draw.
    pub alive: bool,
    /// True when the process came back this round and stayed up — the
    /// substrate must run its `on_recover` re-entry hook.
    pub recovered: bool,
    /// True when the churn draw crashed the process (scripted fates are
    /// not counted — mirrors the `churn_crashes` counters).
    pub churn_crashed: bool,
    /// True when the churn draw recovered the process.
    pub churn_recovered: bool,
}

/// A materialised failure plan for one seeded run. Produced by
/// [`FailureModel::materialize`]; consumed by `da_simnet::Engine` and by
/// `da_runtime`'s `LifecycleController`.
#[derive(Debug, Clone)]
pub struct FailurePlan {
    initially_crashed: Vec<ProcessId>,
    observer_alive_probability: Option<f64>,
    schedule: Vec<Fate>,
    churn: Option<ChurnRates>,
    observation_seed: u64,
    churn_seed: u64,
}

impl FailurePlan {
    /// Processes crashed before round 0.
    #[must_use]
    pub fn initially_crashed(&self) -> &[ProcessId] {
        &self.initially_crashed
    }

    /// True when `pid` is crashed before round 0 (stillborn).
    #[must_use]
    pub fn is_initially_crashed(&self, pid: ProcessId) -> bool {
        self.initially_crashed.contains(&pid)
    }

    /// True when the plan can never change anyone's liveness nor drop an
    /// observation — the [`FailureModel::None`] materialisation. Lets a
    /// substrate skip all per-round lifecycle work.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.initially_crashed.is_empty()
            && self.observer_alive_probability.is_none()
            && self.schedule.is_empty()
            && self.churn.is_none()
    }

    /// Per-observation aliveness probability, if the model is
    /// [`FailureModel::PerObserver`].
    #[must_use]
    pub fn observer_alive_probability(&self) -> Option<f64> {
        self.observer_alive_probability
    }

    /// The churn rates, when the model is [`FailureModel::Churn`].
    #[must_use]
    pub fn churn(&self) -> Option<ChurnRates> {
        self.churn
    }

    /// Scripted transitions applying at the start of `round`.
    pub fn fates_at(&self, round: u64) -> impl Iterator<Item = &Fate> {
        self.schedule.iter().filter(move |f| f.round == round)
    }

    /// Inserts one scripted fate into an already-materialized plan,
    /// keeping the schedule sorted by `(round, pid)` — the order
    /// [`FailureModel::Schedule`] materializes in, so a plan grown fate
    /// by fate is indistinguishable from one scripted up front.
    ///
    /// This is the model checker's crash/recover injection point: the
    /// explorer pushes a fate for the *next* round, steps the engine,
    /// and the fate applies through the exact same code path a replayed
    /// `FailureModel::Schedule` would use. Callers are responsible for
    /// only naming pids inside the population, as
    /// [`FailureModel::materialize`] enforces for up-front schedules.
    pub fn push_fate(&mut self, fate: Fate) {
        let at = self
            .schedule
            .partition_point(|f| (f.round, f.pid) <= (fate.round, fate.pid));
        self.schedule.insert(at, fate);
    }

    /// The full scripted schedule, sorted by `(round, pid)`.
    #[must_use]
    pub fn schedule(&self) -> &[Fate] {
        &self.schedule
    }

    /// Whether the churn model flips the liveness of `pid` at the start
    /// of `round`, given the process is currently `alive`.
    ///
    /// The draw is a stateless hash of `(churn seed, pid, round)`, not a
    /// shared RNG stream, so **both substrates agree on every fate**
    /// regardless of execution order or worker striping — the lifecycle
    /// analogue of `crate::channel::EdgeRngs`. Given the same
    /// [`FailurePlan`] and the same starting status, a process's entire
    /// liveness trajectory is therefore identical on the simulator and on
    /// any live worker pool:
    ///
    /// ```
    /// use da_core::failure::FailureModel;
    /// use da_core::ProcessId;
    ///
    /// let plan = FailureModel::Churn {
    ///     crash_probability: 0.5,
    ///     recover_probability: 0.5,
    /// }
    /// .materialize(8, 42);
    /// let walk = |pid| -> Vec<bool> {
    ///     let mut alive = true;
    ///     (0..16)
    ///         .map(|round| {
    ///             if plan.churn_flips(pid, round, alive) {
    ///                 alive = !alive;
    ///             }
    ///             alive
    ///         })
    ///         .collect()
    /// };
    /// assert_eq!(walk(ProcessId(3)), walk(ProcessId(3)), "replay agrees");
    /// assert_ne!(walk(ProcessId(3)), walk(ProcessId(4)), "streams differ");
    /// ```
    #[must_use]
    #[inline]
    pub fn churn_flips(&self, pid: ProcessId, round: u64, alive: bool) -> bool {
        let Some(rates) = self.churn else {
            return false;
        };
        let p = if alive { rates.crash } else { rates.recover };
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        unit_f64(derive_seed(
            derive_seed(self.churn_seed, u64::from(pid.0)),
            round,
        )) < p
    }

    /// True when the plan can ever change a process's liveness after
    /// round 0 — i.e. it carries scripted fates or churn. Lets a
    /// substrate skip the per-round transition scan entirely.
    #[must_use]
    pub fn has_transitions(&self) -> bool {
        !self.schedule.is_empty() || self.churn.is_some()
    }

    /// Applies one round's worth of plan transitions to `pid`: scripted
    /// fates first (in schedule order), then the churn draw — and
    /// reports everything a substrate needs to act on them.
    ///
    /// This is the single authoritative transition step: the
    /// simulator's `step_round`, the runtime's
    /// `LifecycleController::begin_tick`, and the [`FailurePlan::alive_at`]
    /// replay all consume it, so the substrates cannot drift apart.
    #[must_use]
    #[inline]
    pub fn transition(&self, pid: ProcessId, round: u64, mut alive: bool) -> Transition {
        // Hot path: no scripted schedule (the common churn-only and
        // inert plans) — the transition is exactly the churn draw. This
        // runs once per process per tick on the live workers, so the
        // scripted-fate scan below must not be paid when there is
        // nothing to scan.
        if self.schedule.is_empty() {
            let flips = self.churn_flips(pid, round, alive);
            return Transition {
                alive: alive != flips,
                recovered: flips && !alive,
                churn_crashed: flips && alive,
                churn_recovered: flips && !alive,
            };
        }
        let mut came_back = false;
        for fate in self.fates_at(round) {
            if fate.pid == pid {
                if !fate.crash && !alive {
                    came_back = true;
                }
                alive = !fate.crash;
            }
        }
        let mut churn_crashed = false;
        let mut churn_recovered = false;
        if self.churn_flips(pid, round, alive) {
            if alive {
                churn_crashed = true;
            } else {
                churn_recovered = true;
                came_back = true;
            }
            alive = !alive;
        }
        Transition {
            alive,
            // A process only re-enters (runs `on_recover`) when some
            // transition brought it back AND it is still up once every
            // transition of the round has applied.
            recovered: came_back && alive,
            churn_crashed,
            churn_recovered,
        }
    }

    /// Applies one round's worth of plan transitions to `pid` and
    /// returns only the resulting liveness — [`FailurePlan::transition`]
    /// without the bookkeeping.
    #[must_use]
    pub fn step_alive(&self, pid: ProcessId, round: u64, alive: bool) -> bool {
        self.transition(pid, round, alive).alive
    }

    /// Whether `pid` is alive during `round`, i.e. after the plan's
    /// transitions for rounds `0..=round` have applied — an exact replay
    /// of the trajectory either substrate executes, usable to pick
    /// publishers that are up at their publish tick without running
    /// anything.
    #[must_use]
    pub fn alive_at(&self, pid: ProcessId, round: u64) -> bool {
        let mut alive = !self.is_initially_crashed(pid);
        for r in 0..=round {
            alive = self.step_alive(pid, r, alive);
        }
        alive
    }

    /// Samples whether one particular transmission observes its target as
    /// alive. Deterministic in `(seed, sequence)` so replays agree.
    #[must_use]
    pub fn observes_alive<R: Rng>(&self, rng: &mut R) -> bool {
        match self.observer_alive_probability {
            None => true,
            Some(p) => rng.gen_bool(p),
        }
    }

    /// Seed reserved for observation sampling.
    #[must_use]
    pub fn observation_seed(&self) -> u64 {
        self.observation_seed
    }
}

/// Maps a 64-bit hash to a uniform `f64` in `[0, 1)` using the top 53
/// bits (the full mantissa width, matching the standard conversion).
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_crashes_nobody() {
        let plan = FailureModel::None.materialize(100, 1);
        assert!(plan.initially_crashed().is_empty());
        assert_eq!(plan.observer_alive_probability(), None);
        assert!(plan.is_inert());
    }

    #[test]
    fn stillborn_crashes_expected_count() {
        let plan = FailureModel::Stillborn {
            alive_fraction: 0.7,
        }
        .materialize(1000, 1);
        assert_eq!(plan.initially_crashed().len(), 300);
        assert!(!plan.is_inert());
        let a_crashed = plan.initially_crashed()[0];
        assert!(plan.is_initially_crashed(a_crashed));
    }

    #[test]
    fn stillborn_extremes() {
        let all_alive = FailureModel::Stillborn {
            alive_fraction: 1.0,
        }
        .materialize(50, 9);
        assert!(all_alive.initially_crashed().is_empty());
        let all_dead = FailureModel::Stillborn {
            alive_fraction: 0.0,
        }
        .materialize(50, 9);
        assert_eq!(all_dead.initially_crashed().len(), 50);
    }

    #[test]
    fn stillborn_is_seed_deterministic() {
        let m = FailureModel::Stillborn {
            alive_fraction: 0.5,
        };
        let a = m.materialize(100, 7);
        let b = m.materialize(100, 7);
        assert_eq!(a.initially_crashed(), b.initially_crashed());
        let c = m.materialize(100, 8);
        assert_ne!(a.initially_crashed(), c.initially_crashed());
    }

    #[test]
    fn per_observer_samples_with_probability() {
        let plan = FailureModel::PerObserver {
            alive_fraction: 0.5,
        }
        .materialize(10, 3);
        let mut rng = rng_from_seed(plan.observation_seed());
        let alive = (0..10_000)
            .filter(|_| plan.observes_alive(&mut rng))
            .count();
        assert!((4_500..5_500).contains(&alive), "got {alive}");
    }

    #[test]
    fn per_observer_one_always_observes_alive() {
        let plan = FailureModel::PerObserver {
            alive_fraction: 1.0,
        }
        .materialize(10, 3);
        let mut rng = rng_from_seed(0);
        assert!((0..100).all(|_| plan.observes_alive(&mut rng)));
    }

    #[test]
    fn schedule_sorted_and_filtered() {
        let plan = FailureModel::Schedule(vec![
            Fate {
                round: 5,
                pid: ProcessId(1),
                crash: true,
            },
            Fate {
                round: 2,
                pid: ProcessId(0),
                crash: true,
            },
            Fate {
                round: 5,
                pid: ProcessId(0),
                crash: false,
            },
        ])
        .materialize(10, 0);
        assert_eq!(plan.fates_at(2).count(), 1);
        assert_eq!(plan.fates_at(5).count(), 2);
        assert_eq!(plan.fates_at(9).count(), 0);
    }

    #[test]
    fn push_fate_matches_upfront_schedule() {
        // A plan grown fate-by-fate must be indistinguishable from one
        // scripted up front: same sort, same fates_at answers.
        let fates = [
            Fate {
                round: 5,
                pid: ProcessId(1),
                crash: true,
            },
            Fate {
                round: 2,
                pid: ProcessId(0),
                crash: true,
            },
            Fate {
                round: 5,
                pid: ProcessId(0),
                crash: false,
            },
        ];
        let upfront = FailureModel::Schedule(fates.to_vec()).materialize(10, 0);
        let mut grown = FailureModel::None.materialize(10, 0);
        for fate in fates {
            grown.push_fate(fate);
        }
        assert_eq!(grown.schedule(), upfront.schedule());
        assert!(!grown.is_inert(), "a pushed fate makes the plan active");
    }

    #[test]
    fn clamps_out_of_range_fractions() {
        let plan = FailureModel::Stillborn {
            alive_fraction: 2.0,
        }
        .materialize(10, 0);
        assert!(plan.initially_crashed().is_empty());
        let plan = FailureModel::PerObserver {
            alive_fraction: -1.0,
        }
        .materialize(10, 0);
        assert_eq!(plan.observer_alive_probability(), Some(0.0));
    }

    #[test]
    fn unit_f64_stays_in_range() {
        for x in [0u64, 1, u64::MAX, 0x8000_0000_0000_0000] {
            let u = unit_f64(x);
            assert!((0.0..1.0).contains(&u), "{x} mapped to {u}");
        }
        assert!(unit_f64(u64::MAX) > 0.999);
    }
}

#[cfg(test)]
mod churn_tests {
    use super::*;

    #[test]
    fn churn_materialises_rates() {
        let plan = FailureModel::Churn {
            crash_probability: 0.1,
            recover_probability: 0.4,
        }
        .materialize(10, 1);
        let rates = plan.churn().expect("churn rates present");
        assert!((rates.crash - 0.1).abs() < 1e-12);
        assert!((rates.recover - 0.4).abs() < 1e-12);
        assert!(plan.initially_crashed().is_empty());
    }

    #[test]
    fn churn_rates_clamped() {
        let plan = FailureModel::Churn {
            crash_probability: 2.0,
            recover_probability: -1.0,
        }
        .materialize(10, 1);
        let rates = plan.churn().unwrap();
        assert_eq!(rates.crash, 1.0);
        assert_eq!(rates.recover, 0.0);
        // Saturated rates skip the hash entirely.
        assert!(plan.churn_flips(ProcessId(0), 0, true), "crash p = 1");
        assert!(!plan.churn_flips(ProcessId(0), 0, false), "recover p = 0");
    }

    #[test]
    fn non_churn_models_have_no_rates() {
        assert!(FailureModel::None.materialize(5, 0).churn().is_none());
        assert!(FailureModel::Stillborn {
            alive_fraction: 0.5
        }
        .materialize(5, 0)
        .churn()
        .is_none());
        assert!(!FailureModel::None
            .materialize(5, 0)
            .churn_flips(ProcessId(0), 3, true));
    }

    #[test]
    fn churn_draws_hit_the_configured_rate() {
        let plan = FailureModel::Churn {
            crash_probability: 0.3,
            recover_probability: 0.7,
        }
        .materialize(100, 5);
        let crashes = (0..100u32)
            .flat_map(|p| (0..100u64).map(move |r| (p, r)))
            .filter(|&(p, r)| plan.churn_flips(ProcessId(p), r, true))
            .count();
        assert!(
            (2_700..3_300).contains(&crashes),
            "crash draws {crashes}/10000, expected ≈ 3000"
        );
        let recoveries = (0..100u32)
            .flat_map(|p| (0..100u64).map(move |r| (p, r)))
            .filter(|&(p, r)| plan.churn_flips(ProcessId(p), r, false))
            .count();
        assert!(
            (6_700..7_300).contains(&recoveries),
            "recovery draws {recoveries}/10000, expected ≈ 7000"
        );
    }

    #[test]
    fn out_of_range_fates_are_dropped_at_materialisation() {
        let plan = FailureModel::Schedule(vec![
            Fate {
                round: 1,
                pid: ProcessId(10), // beyond the population of 10
                crash: true,
            },
            Fate {
                round: 1,
                pid: ProcessId(9),
                crash: true,
            },
        ])
        .materialize(10, 0);
        assert_eq!(plan.fates_at(1).count(), 1, "only the valid fate kept");
        assert!(!plan.step_alive(ProcessId(9), 1, true));
    }

    #[test]
    fn transition_reports_recovery_only_when_still_alive() {
        // Crash at 1, recover at 3: the recovery round reports it.
        let plan = FailureModel::Schedule(vec![
            Fate {
                round: 1,
                pid: ProcessId(0),
                crash: true,
            },
            Fate {
                round: 3,
                pid: ProcessId(0),
                crash: false,
            },
            // Same-round recover-then-crash: no re-entry.
            Fate {
                round: 5,
                pid: ProcessId(1),
                crash: false,
            },
            Fate {
                round: 5,
                pid: ProcessId(1),
                crash: true,
            },
        ])
        .materialize(2, 0);
        assert!(!plan.transition(ProcessId(0), 1, true).alive);
        let back = plan.transition(ProcessId(0), 3, false);
        assert!(back.alive && back.recovered);
        assert!(!back.churn_crashed && !back.churn_recovered);
        // Recovering an alive process is not a re-entry.
        assert!(!plan.transition(ProcessId(0), 3, true).recovered);
        // p1 was crashed entering round 5, flickers up, ends crashed.
        let flicker = plan.transition(ProcessId(1), 5, false);
        assert!(!flicker.alive && !flicker.recovered);
        assert!(plan.has_transitions());
        assert!(!FailureModel::None.materialize(2, 0).has_transitions());
    }

    #[test]
    fn step_alive_and_alive_at_replay_mixed_plans() {
        // A scripted crash and recovery walk through step_alive exactly
        // as through fates_at application.
        let plan = FailureModel::Schedule(vec![
            Fate {
                round: 1,
                pid: ProcessId(0),
                crash: true,
            },
            Fate {
                round: 4,
                pid: ProcessId(0),
                crash: false,
            },
        ])
        .materialize(2, 0);
        assert!(plan.alive_at(ProcessId(0), 0));
        assert!(!plan.alive_at(ProcessId(0), 1));
        assert!(!plan.alive_at(ProcessId(0), 3));
        assert!(plan.alive_at(ProcessId(0), 4));
        assert!(plan.alive_at(ProcessId(1), 3), "untouched pid stays up");

        // Under churn, folding step_alive equals the direct per-round
        // walk over churn_flips.
        let churny = FailureModel::Churn {
            crash_probability: 0.4,
            recover_probability: 0.4,
        }
        .materialize(4, 21);
        for pid in (0..4).map(ProcessId) {
            let mut alive = true;
            for round in 0..30 {
                if churny.churn_flips(pid, round, alive) {
                    alive = !alive;
                }
                assert_eq!(churny.alive_at(pid, round), alive, "{pid} round {round}");
            }
        }
    }

    #[test]
    fn churn_draws_are_positionally_deterministic() {
        // The same (seed, pid, round) triple yields the same draw from
        // two independently materialised plans — the property the live
        // runtime's stripe independence rests on.
        let a = FailureModel::Churn {
            crash_probability: 0.5,
            recover_probability: 0.5,
        }
        .materialize(10, 77);
        let b = FailureModel::Churn {
            crash_probability: 0.5,
            recover_probability: 0.5,
        }
        .materialize(10, 77);
        for pid in 0..10u32 {
            for round in 0..50u64 {
                assert_eq!(
                    a.churn_flips(ProcessId(pid), round, true),
                    b.churn_flips(ProcessId(pid), round, true)
                );
            }
        }
        // A different master seed re-rolls the draws.
        let c = FailureModel::Churn {
            crash_probability: 0.5,
            recover_probability: 0.5,
        }
        .materialize(10, 78);
        let agree = (0..10u32)
            .flat_map(|p| (0..50u64).map(move |r| (p, r)))
            .filter(|&(p, r)| {
                a.churn_flips(ProcessId(p), r, true) == c.churn_flips(ProcessId(p), r, true)
            })
            .count();
        assert!(agree < 500, "seeds 77 and 78 must not share all draws");
    }
}
