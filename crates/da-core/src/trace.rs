//! The deterministic flight recorder's vocabulary: causal trace events,
//! the recording configuration both substrates' config builders embed,
//! and the canonical ordering + first-divergence diagnosis the harness
//! uses to explain parity failures.
//!
//! A [`TraceEvent`] records one decision the substrate made about one
//! message (or one lifecycle transition of one process): the tick it
//! happened on, the edge it concerns, a payload id, and a
//! [`TraceVerdict`] mirroring the envelope-ledger counter categories
//! exactly (`sim.dropped_dead` and `rt.dropped_crashed` are the *same*
//! verdict, [`TraceVerdict::DroppedCrashed`], so streams from the two
//! substrates compare directly).
//!
//! Recording is zero-cost when off: both engines hold an
//! `Option<TraceRecorder>`-shaped slot that is `None` unless the
//! [`TraceConfig`] enables tracing, so the hot path pays one branch.
//! When enabled, [`TraceRecorder::record`] is an unsynchronised append
//! into a bounded per-worker buffer (overflow is counted, never
//! blocking), published at tick boundaries like the sharded counters.
//!
//! Diagnosis: [`canonicalize`] sorts a stream into the substrate-neutral
//! order (tick, verdict, from, to, payload) — erasing the live runtime's
//! nondeterministic within-tick delivery interleaving — and
//! [`first_divergence`] reports the first event where two canonical
//! streams disagree.

use crate::process::ProcessId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default per-recorder event capacity (events beyond this are counted
/// in [`TraceRecorder::dropped`] rather than stored).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// What happened to one message (or one process) — the trace-side twin
/// of the envelope-ledger counters.
///
/// The variant order is the canonical tie-break order used by
/// [`canonicalize`]: within a tick, sends sort before deliveries, which
/// sort before drops, which sort before lifecycle transitions.
///
/// ```
/// use da_core::trace::TraceVerdict;
/// assert_eq!(TraceVerdict::DroppedCrashed.label(), "dropped_crashed");
/// assert!(TraceVerdict::Sent < TraceVerdict::Delivered);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TraceVerdict {
    /// The protocol handed the message to the transport
    /// (`sim.sent` / `rt.sent`).
    Sent,
    /// The message reached its destination's protocol hook
    /// (`sim.delivered` / `rt.delivered`).
    Delivered,
    /// The channel's Bernoulli loss draw failed
    /// (`sim.dropped_channel` / `rt.dropped_channel`).
    DroppedChannel,
    /// A partition cut severed the edge at the send tick
    /// (`sim.dropped_partitioned` / `rt.dropped_partitioned`).
    DroppedPartitioned,
    /// The destination was crashed at delivery time
    /// (`sim.dropped_dead` / `rt.dropped_crashed` — one verdict, so the
    /// substrates' streams compare directly).
    DroppedCrashed,
    /// A per-observer failure draw made the destination treat the sender
    /// as failed (`sim.dropped_observed_failed` /
    /// `rt.dropped_observed_failed`).
    DroppedObserved,
    /// The destination worker had already shut down
    /// (`rt.dropped_closed`; the simulator never emits this).
    DroppedClosed,
    /// The message was still in flight when the runtime shut down
    /// (`rt.dropped_shutdown`; the simulator never emits this).
    DroppedShutdown,
    /// The process crashed this tick (`sim.churn_crashes` /
    /// `rt.churn_crashes`, plus scripted crashes).
    Crashed,
    /// The process recovered this tick (`sim.churn_recoveries` /
    /// `rt.churn_recoveries`, plus scripted recoveries).
    Recovered,
}

impl TraceVerdict {
    /// Number of verdict variants (the size of a per-verdict count
    /// table).
    pub const COUNT: usize = 10;

    /// Every verdict, in canonical order.
    pub const ALL: [TraceVerdict; TraceVerdict::COUNT] = [
        TraceVerdict::Sent,
        TraceVerdict::Delivered,
        TraceVerdict::DroppedChannel,
        TraceVerdict::DroppedPartitioned,
        TraceVerdict::DroppedCrashed,
        TraceVerdict::DroppedObserved,
        TraceVerdict::DroppedClosed,
        TraceVerdict::DroppedShutdown,
        TraceVerdict::Crashed,
        TraceVerdict::Recovered,
    ];

    /// Dense index of this verdict (its position in
    /// [`TraceVerdict::ALL`]).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The snake_case name used in JSONL exports and count tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TraceVerdict::Sent => "sent",
            TraceVerdict::Delivered => "delivered",
            TraceVerdict::DroppedChannel => "dropped_channel",
            TraceVerdict::DroppedPartitioned => "dropped_partitioned",
            TraceVerdict::DroppedCrashed => "dropped_crashed",
            TraceVerdict::DroppedObserved => "dropped_observed_failed",
            TraceVerdict::DroppedClosed => "dropped_closed",
            TraceVerdict::DroppedShutdown => "dropped_shutdown",
            TraceVerdict::Crashed => "crashed",
            TraceVerdict::Recovered => "recovered",
        }
    }

    /// The filter category this verdict belongs to.
    #[must_use]
    pub fn category(self) -> TraceCategory {
        match self {
            TraceVerdict::Sent => TraceCategory::Send,
            TraceVerdict::Delivered => TraceCategory::Delivery,
            TraceVerdict::DroppedChannel
            | TraceVerdict::DroppedPartitioned
            | TraceVerdict::DroppedCrashed
            | TraceVerdict::DroppedObserved
            | TraceVerdict::DroppedClosed
            | TraceVerdict::DroppedShutdown => TraceCategory::Drop,
            TraceVerdict::Crashed | TraceVerdict::Recovered => TraceCategory::Lifecycle,
        }
    }
}

impl fmt::Display for TraceVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Coarse event families a [`TraceConfig`] can filter on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceCategory {
    /// Transport-send decisions ([`TraceVerdict::Sent`]).
    Send,
    /// Successful deliveries ([`TraceVerdict::Delivered`]).
    Delivery,
    /// Every `Dropped*` verdict.
    Drop,
    /// Crash and recovery transitions.
    Lifecycle,
}

impl TraceCategory {
    /// Every category.
    pub const ALL: [TraceCategory; 4] = [
        TraceCategory::Send,
        TraceCategory::Delivery,
        TraceCategory::Drop,
        TraceCategory::Lifecycle,
    ];

    fn bit(self) -> u8 {
        match self {
            TraceCategory::Send => 1,
            TraceCategory::Delivery => 2,
            TraceCategory::Drop => 4,
            TraceCategory::Lifecycle => 8,
        }
    }

    /// The snake_case name of this category.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TraceCategory::Send => "send",
            TraceCategory::Delivery => "delivery",
            TraceCategory::Drop => "drop",
            TraceCategory::Lifecycle => "lifecycle",
        }
    }
}

const ALL_CATEGORIES: u8 = 1 | 2 | 4 | 8;

/// How much the flight recorder captures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceMode {
    /// No recorder is allocated; the hot path pays one branch on a
    /// `None`.
    #[default]
    Off,
    /// Per-verdict counts (and the trace histograms) only — no event
    /// buffer.
    CountersOnly,
    /// Counts plus the bounded causal event stream.
    Full,
}

/// Flight-recorder configuration, hung off both substrates' config
/// builders (`SimConfig::with_trace` / `RuntimeConfig::with_trace`).
///
/// ```
/// use da_core::trace::{TraceCategory, TraceConfig, TraceVerdict};
///
/// let cfg = TraceConfig::full()
///     .with_capacity(1024)
///     .with_categories(&[TraceCategory::Delivery, TraceCategory::Drop]);
/// assert!(cfg.records_events());
/// assert!(!cfg.wants(TraceVerdict::Sent));
/// assert!(cfg.wants(TraceVerdict::DroppedChannel));
/// assert!(!TraceConfig::off().is_enabled());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Recording mode (default [`TraceMode::Off`]).
    pub mode: TraceMode,
    /// Per-recorder event capacity; overflow is counted, not stored.
    pub capacity: usize,
    categories: u8,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

impl TraceConfig {
    /// Tracing disabled (the default): no recorder is allocated.
    #[must_use]
    pub fn off() -> Self {
        TraceConfig {
            mode: TraceMode::Off,
            capacity: DEFAULT_TRACE_CAPACITY,
            categories: ALL_CATEGORIES,
        }
    }

    /// Per-verdict counts and histograms, no event buffer.
    #[must_use]
    pub fn counters_only() -> Self {
        TraceConfig {
            mode: TraceMode::CountersOnly,
            ..TraceConfig::off()
        }
    }

    /// Full causal event recording.
    #[must_use]
    pub fn full() -> Self {
        TraceConfig {
            mode: TraceMode::Full,
            ..TraceConfig::off()
        }
    }

    /// Replaces the per-recorder event capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Restricts recording to the given categories (the default records
    /// all of them).
    #[must_use]
    pub fn with_categories(mut self, categories: &[TraceCategory]) -> Self {
        self.categories = categories.iter().fold(0, |mask, c| mask | c.bit());
        self
    }

    /// True unless the mode is [`TraceMode::Off`].
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.mode != TraceMode::Off
    }

    /// True when the mode stores the event stream itself
    /// ([`TraceMode::Full`]).
    #[must_use]
    pub fn records_events(&self) -> bool {
        self.mode == TraceMode::Full
    }

    /// True when events with `verdict` pass the category filter.
    #[must_use]
    pub fn wants(&self, verdict: TraceVerdict) -> bool {
        self.categories & verdict.category().bit() != 0
    }
}

/// One recorded decision: what happened to one message on one edge at
/// one tick (or, for lifecycle verdicts, to one process — then `from`
/// and `to` are both that process and `payload` is zero).
///
/// `payload` is the message's wire size in bytes — the only payload
/// identity both substrates can agree on without touching the protocol's
/// message type.
///
/// ```
/// use da_core::trace::{TraceEvent, TraceVerdict};
/// use da_core::ProcessId;
///
/// let e = TraceEvent {
///     tick: 3,
///     from: ProcessId(0),
///     to: ProcessId(7),
///     payload: 12,
///     verdict: TraceVerdict::Delivered,
/// };
/// assert_eq!(e.to_string(), "t3 p0→p7 delivered [12B]");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Round (simulator) or tick (runtime) the decision was made on.
    /// Drop-at-delivery verdicts stamp the *delivery* tick.
    pub tick: u64,
    /// Sending process (for lifecycle verdicts: the process itself).
    pub from: ProcessId,
    /// Destination process (for lifecycle verdicts: the process itself).
    pub to: ProcessId,
    /// Wire size of the message in bytes (zero for lifecycle verdicts).
    pub payload: u64,
    /// What happened.
    pub verdict: TraceVerdict,
}

impl TraceEvent {
    /// A lifecycle event (crash or recovery) for `pid` at `tick`.
    #[must_use]
    pub fn lifecycle(tick: u64, pid: ProcessId, verdict: TraceVerdict) -> Self {
        TraceEvent {
            tick,
            from: pid,
            to: pid,
            payload: 0,
            verdict,
        }
    }

    /// The canonical sort key: (tick, verdict, from, to, payload). Ticks
    /// order causally; everything after erases scheduler-dependent
    /// within-tick interleaving.
    #[must_use]
    pub fn sort_key(&self) -> (u64, usize, u32, u32, u64) {
        (
            self.tick,
            self.verdict.index(),
            self.from.0,
            self.to.0,
            self.payload,
        )
    }

    /// One JSONL line (no trailing newline): the hand-rolled export the
    /// offline serde shim cannot provide.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"tick\":{},\"from\":{},\"to\":{},\"payload\":{},\"verdict\":\"{}\"}}",
            self.tick,
            self.from.0,
            self.to.0,
            self.payload,
            self.verdict.label()
        )
    }
}

impl PartialOrd for TraceEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TraceEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.sort_key().cmp(&other.sort_key())
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t{} {}→{} {} [{}B]",
            self.tick, self.from, self.to, self.verdict, self.payload
        )
    }
}

/// The first position where two canonical trace streams disagree.
///
/// `left`/`right` are the events at [`TraceDivergence::index`] in each
/// stream; `None` means that stream ended first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceDivergence {
    /// Index into both canonical streams.
    pub index: usize,
    /// The left stream's event at `index`, if any.
    pub left: Option<TraceEvent>,
    /// The right stream's event at `index`, if any.
    pub right: Option<TraceEvent>,
}

impl fmt::Display for TraceDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = |e: &Option<TraceEvent>| match e {
            Some(e) => e.to_string(),
            None => "<stream ended>".to_string(),
        };
        write!(
            f,
            "first divergence at event {}: left {} vs right {}",
            self.index,
            side(&self.left),
            side(&self.right)
        )
    }
}

/// Sorts a stream into the canonical substrate-neutral order
/// ([`TraceEvent::sort_key`]).
pub fn canonicalize(events: &mut [TraceEvent]) {
    events.sort_unstable();
}

/// Reports the first event where two *canonical* streams disagree, or
/// `None` when they are identical. Canonicalize both sides first.
#[must_use]
pub fn first_divergence(left: &[TraceEvent], right: &[TraceEvent]) -> Option<TraceDivergence> {
    let shared = left.len().min(right.len());
    for index in 0..shared {
        if left[index] != right[index] {
            return Some(TraceDivergence {
                index,
                left: Some(left[index]),
                right: Some(right[index]),
            });
        }
    }
    if left.len() != right.len() {
        return Some(TraceDivergence {
            index: shared,
            left: left.get(shared).copied(),
            right: right.get(shared).copied(),
        });
    }
    None
}

/// Renders a stream as JSONL: one [`TraceEvent::to_json`] object per
/// line, trailing newline included when non-empty.
#[must_use]
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.to_json());
        out.push('\n');
    }
    out
}

/// Renders a stream in the Chrome tracing (`chrome://tracing`,
/// Perfetto) JSON array format: one instant event per trace event, with
/// `ts` = tick, `pid` = sender, `tid` = destination.
#[must_use]
pub fn events_to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"tid\":{},\"s\":\"g\",\
             \"args\":{{\"payload\":{}}}}}",
            event.verdict.label(),
            event.tick,
            event.from.0,
            event.to.0,
            event.payload
        ));
    }
    out.push_str("\n]");
    out
}

/// The per-worker (or per-engine) recording buffer: an unsynchronised
/// append on the hot path, bounded by the configured capacity, with
/// per-verdict counts maintained even in
/// [`TraceMode::CountersOnly`].
///
/// Construct through [`TraceRecorder::new`], which returns `None` for a
/// disabled config — the substrates store that `Option` directly, so
/// disabled tracing costs one branch per decision.
///
/// ```
/// use da_core::trace::{TraceConfig, TraceEvent, TraceRecorder, TraceVerdict};
/// use da_core::ProcessId;
///
/// assert!(TraceRecorder::new(&TraceConfig::off()).is_none());
///
/// let mut rec = TraceRecorder::new(&TraceConfig::full()).unwrap();
/// rec.record(TraceEvent {
///     tick: 0,
///     from: ProcessId(0),
///     to: ProcessId(1),
///     payload: 4,
///     verdict: TraceVerdict::Sent,
/// });
/// assert_eq!(rec.count(TraceVerdict::Sent), 1);
/// assert_eq!(rec.take_events().len(), 1);
/// assert!(rec.events().is_empty(), "take drains the buffer");
/// ```
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    config: TraceConfig,
    events: Vec<TraceEvent>,
    dropped: u64,
    counts: [u64; TraceVerdict::COUNT],
}

impl TraceRecorder {
    /// A recorder for `config`, or `None` when tracing is off.
    #[must_use]
    pub fn new(config: &TraceConfig) -> Option<Self> {
        if !config.is_enabled() {
            return None;
        }
        Some(TraceRecorder {
            config: *config,
            events: Vec::new(),
            dropped: 0,
            counts: [0; TraceVerdict::COUNT],
        })
    }

    /// Records one event: bumps its verdict count and, in
    /// [`TraceMode::Full`], appends it to the buffer (counting overflow
    /// beyond the capacity instead of storing it). Events whose category
    /// is filtered out are ignored entirely.
    pub fn record(&mut self, event: TraceEvent) {
        if !self.config.wants(event.verdict) {
            return;
        }
        self.counts[event.verdict.index()] += 1;
        if self.config.records_events() {
            if self.events.len() < self.config.capacity {
                self.events.push(event);
            } else {
                self.dropped += 1;
            }
        }
    }

    /// Bumps a verdict count by `n` without storing events — for bulk
    /// accounting where per-envelope identity is gone (batched
    /// closed-worker drops, shutdown drains).
    pub fn count_only(&mut self, verdict: TraceVerdict, n: u64) {
        if self.config.wants(verdict) {
            self.counts[verdict.index()] += n;
        }
    }

    /// The buffered events (empty in [`TraceMode::CountersOnly`]).
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drains and returns the buffered events — the tick-boundary
    /// publish used by the live workers.
    #[must_use]
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Count of events recorded with `verdict` (including any the
    /// capacity bound dropped).
    #[must_use]
    pub fn count(&self, verdict: TraceVerdict) -> u64 {
        self.counts[verdict.index()]
    }

    /// The full per-verdict count table, indexed by
    /// [`TraceVerdict::index`].
    #[must_use]
    pub fn counts(&self) -> &[u64; TraceVerdict::COUNT] {
        &self.counts
    }

    /// Events lost to the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configuration this recorder was built from.
    #[must_use]
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tick: u64, from: u32, to: u32, payload: u64, verdict: TraceVerdict) -> TraceEvent {
        TraceEvent {
            tick,
            from: ProcessId(from),
            to: ProcessId(to),
            payload,
            verdict,
        }
    }

    #[test]
    fn verdict_table_is_dense_and_labelled() {
        for (i, v) in TraceVerdict::ALL.iter().enumerate() {
            assert_eq!(v.index(), i);
            assert!(!v.label().is_empty());
        }
        assert_eq!(TraceVerdict::ALL.len(), TraceVerdict::COUNT);
    }

    #[test]
    fn verdicts_map_to_ledger_categories() {
        assert_eq!(TraceVerdict::Sent.category(), TraceCategory::Send);
        assert_eq!(TraceVerdict::Delivered.category(), TraceCategory::Delivery);
        assert_eq!(
            TraceVerdict::DroppedShutdown.category(),
            TraceCategory::Drop
        );
        assert_eq!(TraceVerdict::Recovered.category(), TraceCategory::Lifecycle);
        assert_eq!(
            TraceVerdict::DroppedObserved.label(),
            "dropped_observed_failed",
            "labels match the counter ledger suffixes"
        );
    }

    #[test]
    fn config_defaults_to_off_with_all_categories() {
        let cfg = TraceConfig::default();
        assert!(!cfg.is_enabled());
        assert!(!cfg.records_events());
        for v in TraceVerdict::ALL {
            assert!(cfg.wants(v), "default filter records every category");
        }
        assert_eq!(cfg.capacity, DEFAULT_TRACE_CAPACITY);
    }

    #[test]
    fn category_filter_masks_whole_families() {
        let cfg = TraceConfig::full().with_categories(&[TraceCategory::Drop]);
        assert!(!cfg.wants(TraceVerdict::Sent));
        assert!(!cfg.wants(TraceVerdict::Delivered));
        assert!(!cfg.wants(TraceVerdict::Crashed));
        assert!(cfg.wants(TraceVerdict::DroppedChannel));
        assert!(cfg.wants(TraceVerdict::DroppedShutdown));
    }

    #[test]
    fn counters_only_counts_without_buffering() {
        let mut rec = TraceRecorder::new(&TraceConfig::counters_only()).unwrap();
        rec.record(ev(0, 0, 1, 4, TraceVerdict::Sent));
        rec.record(ev(1, 0, 1, 4, TraceVerdict::Delivered));
        assert_eq!(rec.count(TraceVerdict::Sent), 1);
        assert_eq!(rec.count(TraceVerdict::Delivered), 1);
        assert!(rec.events().is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn capacity_overflow_is_counted_not_stored() {
        let mut rec = TraceRecorder::new(&TraceConfig::full().with_capacity(2)).unwrap();
        for tick in 0..5 {
            rec.record(ev(tick, 0, 1, 4, TraceVerdict::Sent));
        }
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.dropped(), 3);
        assert_eq!(rec.count(TraceVerdict::Sent), 5, "counts see every event");
    }

    #[test]
    fn filtered_events_are_invisible() {
        let cfg = TraceConfig::full().with_categories(&[TraceCategory::Delivery]);
        let mut rec = TraceRecorder::new(&cfg).unwrap();
        rec.record(ev(0, 0, 1, 4, TraceVerdict::Sent));
        rec.count_only(TraceVerdict::Sent, 10);
        assert_eq!(rec.count(TraceVerdict::Sent), 0);
        assert!(rec.events().is_empty());
    }

    #[test]
    fn canonical_order_erases_interleaving() {
        let mut a = vec![
            ev(1, 3, 0, 4, TraceVerdict::Delivered),
            ev(0, 0, 3, 4, TraceVerdict::Sent),
            ev(1, 1, 0, 4, TraceVerdict::Delivered),
        ];
        let mut b = vec![
            ev(1, 1, 0, 4, TraceVerdict::Delivered),
            ev(1, 3, 0, 4, TraceVerdict::Delivered),
            ev(0, 0, 3, 4, TraceVerdict::Sent),
        ];
        canonicalize(&mut a);
        canonicalize(&mut b);
        assert_eq!(a, b);
        assert_eq!(a[0].verdict, TraceVerdict::Sent, "tick 0 first");
    }

    #[test]
    fn first_divergence_pinpoints_the_difference() {
        let base = vec![
            ev(0, 0, 1, 4, TraceVerdict::Sent),
            ev(1, 0, 1, 4, TraceVerdict::Delivered),
        ];
        assert_eq!(first_divergence(&base, &base), None);

        let mut lossy = base.clone();
        lossy[1].verdict = TraceVerdict::DroppedChannel;
        let d = first_divergence(&base, &lossy).unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.left.unwrap().verdict, TraceVerdict::Delivered);
        assert_eq!(d.right.unwrap().verdict, TraceVerdict::DroppedChannel);

        let shorter = &base[..1];
        let d = first_divergence(shorter, &base).unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.left, None);
        assert_eq!(d.right, Some(base[1]));
    }

    #[test]
    fn first_divergence_empty_vs_empty_is_none() {
        assert_eq!(first_divergence(&[], &[]), None);
    }

    #[test]
    fn first_divergence_empty_vs_nonempty_points_at_index_zero() {
        // The degenerate prefix case: an empty stream against anything
        // non-empty diverges at index 0 with exactly one side present.
        let stream = vec![ev(0, 0, 1, 4, TraceVerdict::Sent)];
        let d = first_divergence(&[], &stream).unwrap();
        assert_eq!(d.index, 0);
        assert_eq!(d.left, None);
        assert_eq!(d.right, Some(stream[0]));

        let d = first_divergence(&stream, &[]).unwrap();
        assert_eq!(d.index, 0);
        assert_eq!(d.left, Some(stream[0]));
        assert_eq!(d.right, None);
        // The rendering never says "event -1" or similar off-by-one.
        assert!(format!("{d}").starts_with("first divergence at event 0"));
    }

    #[test]
    fn first_divergence_proper_prefix_diverges_at_shorter_length() {
        // Streams where one is a proper prefix of the other must
        // diverge exactly at the shorter length — not shorter-1 (the
        // last shared event is equal) and not shorter+1 (out of range).
        let long: Vec<TraceEvent> = (0..4).map(|t| ev(t, 0, 1, t, TraceVerdict::Sent)).collect();
        for cut in 0..long.len() {
            let short = &long[..cut];
            let d = first_divergence(short, &long).unwrap();
            assert_eq!(d.index, cut, "prefix of length {cut}");
            assert_eq!(d.left, None);
            assert_eq!(d.right, Some(long[cut]));
            // And symmetrically.
            let d = first_divergence(&long, short).unwrap();
            assert_eq!(d.index, cut);
            assert_eq!(d.left, Some(long[cut]));
            assert_eq!(d.right, None);
        }
    }

    #[test]
    fn first_divergence_equal_length_streams() {
        // Equal-length identical streams: no divergence, whatever the
        // length. Equal-length different streams: index of the first
        // differing event, both sides present.
        let a: Vec<TraceEvent> = (0..3).map(|t| ev(t, 0, 1, 7, TraceVerdict::Sent)).collect();
        assert_eq!(first_divergence(&a, &a.clone()), None);
        let mut b = a.clone();
        b[2].payload = 8;
        let d = first_divergence(&a, &b).unwrap();
        assert_eq!(d.index, 2);
        assert_eq!(d.left.unwrap().payload, 7);
        assert_eq!(d.right.unwrap().payload, 8);
    }

    #[test]
    fn jsonl_export_is_one_object_per_line() {
        let events = vec![
            ev(0, 0, 1, 4, TraceVerdict::Sent),
            ev(1, 0, 1, 4, TraceVerdict::Delivered),
        ];
        let jsonl = events_to_jsonl(&events);
        assert_eq!(
            jsonl,
            "{\"tick\":0,\"from\":0,\"to\":1,\"payload\":4,\"verdict\":\"sent\"}\n\
             {\"tick\":1,\"from\":0,\"to\":1,\"payload\":4,\"verdict\":\"delivered\"}\n"
        );
        assert!(events_to_jsonl(&[]).is_empty());
    }

    #[test]
    fn chrome_export_is_a_json_array_of_instants() {
        let events = vec![ev(2, 1, 3, 8, TraceVerdict::Delivered)];
        let json = events_to_chrome_trace(&events);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"name\":\"delivered\""));
        assert!(json.contains("\"ts\":2"));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"tid\":3"));
        assert_eq!(events_to_chrome_trace(&[]), "[\n]");
    }

    #[test]
    fn divergence_display_reads_both_sides() {
        let d = TraceDivergence {
            index: 5,
            left: Some(ev(2, 0, 1, 4, TraceVerdict::Delivered)),
            right: None,
        };
        let text = d.to_string();
        assert!(text.contains("event 5"));
        assert!(text.contains("t2 p0→p1 delivered [4B]"));
        assert!(text.contains("<stream ended>"));
    }
}
