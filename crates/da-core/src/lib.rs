//! # da-core — substrate-neutral foundations
//!
//! The pieces of the daMulticast reproduction that belong to *neither*
//! substrate: the unreliable-channel fault model (Sec. III-A of the
//! paper), the [`topology`] layer that generalises it (named nodes,
//! per-link channel overrides, scripted partitions — see
//! [`topology::NetworkModel`]), the process failure models (Sec. VII),
//! the process identity vocabulary, the deterministic seed-derivation
//! scheme every RNG stream hangs off, and the unified
//! [`fault::FaultConfig`] builder both substrates' configs embed.
//!
//! Both execution substrates consume this crate:
//!
//! * `da_simnet::Engine` samples loss and latency for every queued send
//!   through [`channel::ChannelConfig::sample_fate`] on its own engine
//!   RNG stream — single-threaded, globally ordered draws — and applies
//!   a [`failure::FailurePlan`] at the start of every round;
//! * `da_runtime`'s `FaultyRouter` samples the *same* channel model per
//!   send, but on [`channel::EdgeRngs`] — a stateless RNG per send,
//!   keyed by `(edge, tick, occurrence)` — and its
//!   `LifecycleController` applies the *same* failure plan per worker
//!   stripe. Plan fates are drawn from stateless `(pid, round)` hashes
//!   ([`failure::FailurePlan::churn_flips`]), so neither draws nor
//!   fates depend on how processes are striped across worker threads.
//!
//! `da_simnet` re-exports [`channel::ChannelConfig`], [`channel::Latency`],
//! [`failure::FailureModel`], [`failure::FailurePlan`],
//! [`process::ProcessId`], [`seed::derive_seed`] and the rest of this
//! crate's surface under their pre-existing paths, so simulator-facing
//! code is unaffected by the extraction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod failure;
pub mod fault;
pub mod process;
pub mod seed;
pub mod store;
pub mod topology;
pub mod trace;

pub use channel::{ChannelConfig, ChannelFate, EdgeRngs, Latency};
pub use failure::{ChurnRates, FailureModel, FailurePlan, Fate};
pub use fault::FaultConfig;
pub use process::{ProcessId, ProcessIndexError, ProcessStatus};
pub use seed::{derive_seed, rng_for_process, rng_from_seed};
pub use store::ProcessStore;
pub use topology::{
    DropSchedule, NetFate, NetworkModel, NodeId, Partition, PartitionSchedule, ScriptedDrop,
    Topology,
};
pub use trace::{
    canonicalize, first_divergence, TraceCategory, TraceConfig, TraceDivergence, TraceEvent,
    TraceMode, TraceRecorder, TraceVerdict,
};
