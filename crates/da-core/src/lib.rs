//! # da-core — substrate-neutral foundations
//!
//! The pieces of the daMulticast reproduction that belong to *neither*
//! substrate: the unreliable-channel fault model (Sec. III-A of the
//! paper) and the deterministic seed-derivation scheme every RNG stream
//! hangs off.
//!
//! Both execution substrates consume this crate:
//!
//! * `da_simnet::Engine` samples loss and latency for every queued send
//!   through [`channel::ChannelConfig::sample_fate`] on its own engine
//!   RNG stream — single-threaded, globally ordered draws;
//! * `da_runtime`'s `FaultyRouter` samples the *same* model per send,
//!   but on [`channel::EdgeRngs`] — one deterministic stream per
//!   directed process pair — so the draws a message experiences do not
//!   depend on how processes are striped across worker threads.
//!
//! `da_simnet` re-exports [`channel::ChannelConfig`], [`channel::Latency`],
//! [`seed::derive_seed`] and [`seed::rng_from_seed`] under their
//! pre-existing paths, so simulator-facing code is unaffected by the
//! extraction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod seed;

pub use channel::{ChannelConfig, ChannelFate, EdgeRngs, Latency};
pub use seed::{derive_seed, rng_from_seed};
