//! Deterministic seed derivation.
//!
//! Every source of randomness in a run — simulated or live — is derived
//! from a single master seed so that runs are exactly reproducible:
//! identical seeds and configurations produce identical metrics (an
//! invariant covered by the workspace integration test suite).

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Mixes `master` and a `stream` discriminator into an independent seed
/// using the splitmix64 finalizer, which diffuses single-bit differences
/// across the whole word.
///
/// ```
/// use da_core::seed::derive_seed;
/// assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
/// assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
/// ```
#[must_use]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`SmallRng`] seeded directly from a 64-bit seed.
#[must_use]
pub fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// The RNG stream of process `pid` for a run with the given master seed
/// — the convention **both substrates** use, so a process keeps its
/// stream whether it executes under the simulator or the live runtime.
///
/// Streams of different processes are independent, and independent of
/// the engine's own channel/failure stream (stream 0 is reserved for
/// the engine; processes are offset by 1).
#[must_use]
pub fn rng_for_process(master: u64, pid: crate::process::ProcessId) -> SmallRng {
    rng_from_seed(derive_seed(master, u64::from(pid.0) + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
    }

    #[test]
    fn derive_seed_separates_streams() {
        let a = derive_seed(42, 1);
        let b = derive_seed(42, 2);
        assert_ne!(a, b);
        // Nearby masters also diverge.
        assert_ne!(derive_seed(42, 1), derive_seed(43, 1));
    }

    #[test]
    fn rng_from_seed_is_reproducible() {
        let mut r1 = rng_from_seed(99);
        let mut r2 = rng_from_seed(99);
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }
}
