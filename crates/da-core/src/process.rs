//! Process identity and liveness — the vocabulary both substrates (and
//! the failure model below them) share.
//!
//! Moved here from `da_simnet` so that [`crate::failure`] can script
//! fates without depending on a substrate; `da_simnet` re-exports both
//! types under their original paths.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a process (`pl` in the paper).
///
/// Ids are dense indices into the engine's (or runtime's) process table.
///
/// ```
/// use da_core::ProcessId;
/// let p = ProcessId(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// The raw dense index of this process.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense index.
    ///
    /// Both substrates validate the whole population once at their spawn
    /// boundary via [`try_from_index`](Self::try_from_index), so hitting
    /// this panic from inside a run would mean an id was fabricated
    /// past that check.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Self::try_from_index(index).expect("process index exceeds u32::MAX")
    }

    /// Fallible twin of [`from_index`](Self::from_index): builds an id
    /// from a dense index, or reports the overflow as a typed error.
    ///
    /// Spawn boundaries (`da_simnet::Engine::new`, `da_runtime`'s
    /// spawn) check their population size through this, so a > 4 billion
    /// process misconfiguration fails with [`ProcessIndexError`] at
    /// configuration time instead of panicking deep inside striping.
    ///
    /// ```
    /// use da_core::ProcessId;
    /// assert_eq!(ProcessId::try_from_index(3), Ok(ProcessId(3)));
    /// assert!(ProcessId::try_from_index(usize::MAX).is_err());
    /// ```
    pub fn try_from_index(index: usize) -> Result<Self, ProcessIndexError> {
        u32::try_from(index)
            .map(ProcessId)
            .map_err(|_| ProcessIndexError { index })
    }
}

/// A dense process index too large to name: ids are `u32`, so
/// populations are capped at `u32::MAX + 1` processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessIndexError {
    /// The offending index.
    pub index: usize,
}

impl fmt::Display for ProcessIndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "process index {} exceeds u32::MAX ({}); populations are capped at {} processes",
            self.index,
            u32::MAX,
            u64::from(u32::MAX) + 1
        )
    }
}

impl std::error::Error for ProcessIndexError {}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Liveness of a process.
///
/// The paper's model (Sec. III-A): "processes might crash and recover (a
/// process that is not crashed is said to be alive)".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessStatus {
    /// The process executes round hooks and receives messages.
    Alive,
    /// The process is crashed: it neither executes nor receives.
    Crashed,
}

impl ProcessStatus {
    /// True when the process is [`ProcessStatus::Alive`].
    #[must_use]
    pub fn is_alive(self) -> bool {
        matches!(self, ProcessStatus::Alive)
    }
}

impl fmt::Display for ProcessStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessStatus::Alive => f.write_str("alive"),
            ProcessStatus::Crashed => f.write_str("crashed"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for i in [0usize, 5, 1000] {
            assert_eq!(ProcessId::from_index(i).index(), i);
        }
    }

    #[test]
    fn try_from_index_reports_overflow_as_typed_error() {
        assert_eq!(ProcessId::try_from_index(7), Ok(ProcessId(7)));
        assert_eq!(
            ProcessId::try_from_index(u32::MAX as usize),
            Ok(ProcessId(u32::MAX))
        );
        let err = ProcessId::try_from_index(u32::MAX as usize + 1).unwrap_err();
        assert_eq!(err.index, u32::MAX as usize + 1);
        assert!(err.to_string().contains("exceeds u32::MAX"));
    }

    #[test]
    fn display() {
        assert_eq!(ProcessId(9).to_string(), "p9");
        assert_eq!(ProcessStatus::Alive.to_string(), "alive");
        assert_eq!(ProcessStatus::Crashed.to_string(), "crashed");
    }

    #[test]
    fn status_predicate() {
        assert!(ProcessStatus::Alive.is_alive());
        assert!(!ProcessStatus::Crashed.is_alive());
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(ProcessId(1) < ProcessId(2));
    }
}
