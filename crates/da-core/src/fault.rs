//! The one fault-configuration surface both substrates share.
//!
//! Before this module, the fault knobs leaked through three inconsistent
//! builder entry points (`SimConfig::with_channel`/`with_failure` vs
//! `RuntimeConfig::with_channel`/`with_failures`, plus loss-only harness
//! sweep signatures). [`FaultConfig`] folds the whole surface — network
//! model (channel + topology + partitions) and process-failure model —
//! into a single struct embedded by both `SimConfig` and
//! `RuntimeConfig`, so one value configures either substrate and a
//! harness trial can hand the *same* faults to both sides of a
//! live-vs-sim comparison.

use crate::channel::ChannelConfig;
use crate::failure::FailureModel;
use crate::topology::{NetworkModel, PartitionSchedule, Topology};
use serde::{Deserialize, Serialize};

/// Everything that can go wrong in one run, in one value: the
/// [`NetworkModel`] (default channel, optional topology, partition
/// schedule) and the process [`FailureModel`].
///
/// The default is the absence of faults: perfect channels, no topology,
/// no partitions, no crashes.
///
/// ```
/// use da_core::fault::FaultConfig;
/// use da_core::channel::ChannelConfig;
/// use da_core::failure::FailureModel;
/// use da_core::topology::{NodeId, Partition, PartitionSchedule, Topology};
///
/// let faults = FaultConfig::new()
///     .with_channel(ChannelConfig::paper_default())
///     .with_failures(FailureModel::Stillborn { alive_fraction: 0.9 })
///     .with_topology(Topology::with_nodes(["core", "edge"]))
///     .with_partitions(PartitionSchedule::none().with_partition(
///         Partition::cut(vec![vec![NodeId(0)], vec![NodeId(1)]], 10).heal_at(20),
///     ));
/// assert!((faults.channel().success_probability - 0.85).abs() < 1e-12);
/// assert!(!faults.network.partitions.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// The network fault model: channel, topology, partitions.
    pub network: NetworkModel,
    /// The process failure model (crashes, churn, per-observer fates).
    pub failure: FailureModel,
}

impl FaultConfig {
    /// No faults at all: perfect uniform network, no process failures.
    #[must_use]
    pub fn new() -> Self {
        FaultConfig::default()
    }

    /// Replaces the network model's *default channel*, keeping any
    /// topology and partition schedule.
    #[must_use]
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.network.channel = channel;
        self
    }

    /// Replaces the process failure model.
    #[must_use]
    pub fn with_failures(mut self, failure: FailureModel) -> Self {
        self.failure = failure;
        self
    }

    /// Installs a topology (placement + per-link overrides).
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.network.topology = Some(topology);
        self
    }

    /// Installs a partition schedule.
    #[must_use]
    pub fn with_partitions(mut self, partitions: PartitionSchedule) -> Self {
        self.network.partitions = partitions;
        self
    }

    /// Replaces the whole network model in one step.
    #[must_use]
    pub fn with_network(mut self, network: impl Into<NetworkModel>) -> Self {
        self.network = network.into();
        self
    }

    /// The network model's default channel (convenience accessor for
    /// the overwhelmingly common uniform case).
    #[must_use]
    pub fn channel(&self) -> ChannelConfig {
        self.network.channel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Latency;
    use crate::topology::NodeId;

    #[test]
    fn default_is_faultless() {
        let faults = FaultConfig::new();
        assert!(faults.network.is_perfect());
        assert_eq!(faults.failure, FailureModel::None);
        assert_eq!(faults, FaultConfig::default());
    }

    #[test]
    fn builders_compose_without_clobbering() {
        let topo = Topology::with_nodes(["a", "b"]);
        let cuts = PartitionSchedule::none().with_partition(crate::topology::Partition::cut(
            vec![vec![NodeId(0)], vec![NodeId(1)]],
            3,
        ));
        let faults = FaultConfig::new()
            .with_topology(topo.clone())
            .with_partitions(cuts.clone())
            .with_channel(ChannelConfig::paper_default())
            .with_failures(FailureModel::PerObserver {
                alive_fraction: 0.8,
            });
        assert_eq!(faults.network.topology, Some(topo));
        assert_eq!(faults.network.partitions, cuts);
        assert!((faults.channel().success_probability - 0.85).abs() < 1e-12);
        assert!(matches!(faults.failure, FailureModel::PerObserver { .. }));
    }

    #[test]
    fn with_network_accepts_a_bare_channel() {
        let channel =
            ChannelConfig::paper_default().with_latency(Latency::UniformRounds { min: 1, max: 3 });
        let faults = FaultConfig::new().with_network(channel);
        assert_eq!(faults.network, NetworkModel::uniform(channel));
        assert_eq!(faults.channel(), channel);
    }
}
