//! The unreliable-channel fault model (Sec. III-A of the paper),
//! shared by both execution substrates.
//!
//! A channel is parameterised by a per-send survival probability and a
//! latency distribution measured in virtual-time units (gossip rounds on
//! the simulator, scheduler ticks on the live runtime). The model is
//! *sampled*, never enforced: [`ChannelConfig::sample_fate`] draws the
//! fate of one send from a caller-supplied RNG, so each substrate keeps
//! its own notion of which stream the draws come from —
//! `da_simnet::Engine` uses its single engine stream, `da_runtime`'s
//! `FaultyRouter` derives one stateless RNG per send, keyed by the
//! directed edge, the send tick, and the within-tick occurrence
//! ([`EdgeRngs`]).

use crate::seed::{derive_seed, rng_from_seed};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Message latency, measured in virtual-time units (gossip rounds on the
/// simulator, ticks on the live runtime).
///
/// The paper's simulation is round-synchronous: a message sent in round
/// `n` is available at the start of round `n + 1`, which is
/// [`Latency::Fixed`]`(1)`. [`Latency::UniformRounds`] models jittery
/// links where delivery may straggle by several rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Latency {
    /// Every message takes exactly this many rounds (minimum 1).
    Fixed(u64),
    /// Latency drawn uniformly from `min..=max` rounds per message.
    UniformRounds {
        /// Lower bound (inclusive, minimum 1).
        min: u64,
        /// Upper bound (inclusive).
        max: u64,
    },
}

impl Latency {
    /// The fastest delivery this model can ever sample, in rounds/ticks
    /// (≥ 1, matching the clamping [`ChannelConfig::sample_fate`]
    /// applies).
    ///
    /// Schedulers use this as a *safety bound*: a receiver that has seen
    /// every send up to virtual time `t` is guaranteed to already hold
    /// every message due at or before `t + min_rounds()`, so it may run
    /// that far ahead of its slowest peer without reordering deliveries.
    ///
    /// ```
    /// use da_core::channel::Latency;
    /// assert_eq!(Latency::Fixed(3).min_rounds(), 3);
    /// assert_eq!(Latency::Fixed(0).min_rounds(), 1, "clamped like sampling");
    /// assert_eq!(Latency::UniformRounds { min: 2, max: 5 }.min_rounds(), 2);
    /// ```
    #[must_use]
    pub fn min_rounds(&self) -> u64 {
        match self {
            Latency::Fixed(l) => (*l).max(1),
            Latency::UniformRounds { min, .. } => (*min).max(1),
        }
    }

    /// The slowest delivery this model can ever sample, in rounds/ticks
    /// (≥ [`min_rounds`](Self::min_rounds), with the same degenerate-bound
    /// clamping [`ChannelConfig::sample_fate`] applies).
    ///
    /// Where `min_rounds` bounds how far a scheduler may run *ahead*,
    /// `max_rounds` bounds how far into the future a surviving send can
    /// land — the sizing bound for a fixed-capacity delay wheel.
    ///
    /// ```
    /// use da_core::channel::Latency;
    /// assert_eq!(Latency::Fixed(3).max_rounds(), 3);
    /// assert_eq!(Latency::Fixed(0).max_rounds(), 1, "clamped like sampling");
    /// assert_eq!(Latency::UniformRounds { min: 2, max: 5 }.max_rounds(), 5);
    /// assert_eq!(Latency::UniformRounds { min: 4, max: 2 }.max_rounds(), 4);
    /// ```
    #[must_use]
    pub fn max_rounds(&self) -> u64 {
        match self {
            Latency::Fixed(l) => (*l).max(1),
            Latency::UniformRounds { min, max } => (*max).max((*min).max(1)),
        }
    }
}

impl Default for Latency {
    fn default() -> Self {
        Latency::Fixed(1)
    }
}

/// The sampled fate of one send: lost on the wire, or delivered after a
/// latency (in virtual-time units, always ≥ 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelFate {
    /// The channel dropped the message.
    Lost,
    /// The message survives and arrives `latency` rounds/ticks after it
    /// was sent.
    Deliver {
        /// Rounds/ticks between send and delivery (≥ 1).
        latency: u64,
    },
}

/// Configuration of the unreliable best-effort channels (Sec. III-A of the
/// paper; the simulation uses a flat success probability of 0.85,
/// Sec. VII-A).
///
/// ```
/// use da_core::channel::ChannelConfig;
/// let paper = ChannelConfig::paper_default();
/// assert!((paper.success_probability - 0.85).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Probability that a sent message survives the channel
    /// (`p_succ` in the paper's analysis).
    pub success_probability: f64,
    /// Delivery latency model.
    pub latency: Latency,
}

impl ChannelConfig {
    /// Perfectly reliable channels with one-round latency.
    #[must_use]
    pub fn reliable() -> Self {
        ChannelConfig {
            success_probability: 1.0,
            latency: Latency::default(),
        }
    }

    /// The paper's simulation setting: `p_succ = 0.85`, one-round latency
    /// ("The probability for an event to be received is set to an arbitrary
    /// value of 0.85, to simulate unreliable, i.e. best effort, channels").
    #[must_use]
    pub fn paper_default() -> Self {
        ChannelConfig {
            success_probability: 0.85,
            latency: Latency::default(),
        }
    }

    /// Sets the success probability, clamping into `[0, 1]`.
    #[must_use]
    pub fn with_success_probability(mut self, p: f64) -> Self {
        self.success_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: Latency) -> Self {
        self.latency = latency;
        self
    }

    /// True when the model can neither lose nor reorder anything: every
    /// send survives and takes exactly one round — the configuration
    /// under which a faulty transport must behave byte-for-byte like a
    /// perfect one.
    #[must_use]
    pub fn is_perfect(&self) -> bool {
        self.success_probability >= 1.0 && self.latency == Latency::Fixed(1)
    }

    /// The fastest delivery this channel can ever sample
    /// ([`Latency::min_rounds`] of its latency model) — the slack a
    /// bounded-lag scheduler may exploit between workers.
    #[must_use]
    pub fn min_latency(&self) -> u64 {
        self.latency.min_rounds()
    }

    /// The slowest delivery this channel can ever sample
    /// ([`Latency::max_rounds`] of its latency model) — the capacity a
    /// fixed-size delay wheel needs to hold every in-flight envelope.
    #[must_use]
    pub fn max_latency(&self) -> u64 {
        self.latency.max_rounds()
    }

    /// Draws the fate of one send from `rng`.
    ///
    /// The draw order is part of the model's contract (deterministic
    /// replays depend on it): at most one Bernoulli draw for loss —
    /// skipped entirely when `success_probability ≥ 1` — then at most
    /// one uniform draw for latency — skipped for [`Latency::Fixed`].
    ///
    /// ```
    /// use da_core::channel::{ChannelConfig, ChannelFate};
    /// use da_core::seed::rng_from_seed;
    ///
    /// let mut rng = rng_from_seed(7);
    /// let fate = ChannelConfig::reliable().sample_fate(&mut rng);
    /// assert_eq!(fate, ChannelFate::Deliver { latency: 1 });
    /// ```
    pub fn sample_fate<R: Rng>(&self, rng: &mut R) -> ChannelFate {
        let survives =
            self.success_probability >= 1.0 || rng.gen_bool(self.success_probability.max(0.0));
        if !survives {
            return ChannelFate::Lost;
        }
        let latency = match self.latency {
            Latency::Fixed(l) => l.max(1),
            Latency::UniformRounds { min, max } => {
                let lo = min.max(1);
                let hi = max.max(lo);
                rng.gen_range(lo..=hi)
            }
        };
        ChannelFate::Deliver { latency }
    }

    /// Enumerates every fate [`sample_fate`](Self::sample_fate) could
    /// possibly return, in a canonical order: `Lost` first (present iff
    /// `success_probability < 1`), then `Deliver` for each reachable
    /// latency in ascending order.
    ///
    /// This is the enumeration twin of the sampling API: a bounded
    /// model checker substitutes one of these fates for the RNG draw at
    /// each choice point, so the set returned here *is* the branching
    /// factor of a send. The sampling path is untouched — draws remain
    /// byte-identical to before this method existed.
    ///
    /// ```
    /// use da_core::channel::{ChannelConfig, ChannelFate, Latency};
    ///
    /// let lossy = ChannelConfig::reliable().with_success_probability(0.5);
    /// assert_eq!(
    ///     lossy.enumerate_fates(),
    ///     vec![ChannelFate::Lost, ChannelFate::Deliver { latency: 1 }],
    /// );
    ///
    /// let jittery = ChannelConfig::reliable()
    ///     .with_latency(Latency::UniformRounds { min: 1, max: 3 });
    /// assert_eq!(jittery.enumerate_fates().len(), 3);
    /// ```
    #[must_use]
    pub fn enumerate_fates(&self) -> Vec<ChannelFate> {
        let mut fates = Vec::new();
        if self.success_probability < 1.0 {
            fates.push(ChannelFate::Lost);
        }
        if self.success_probability > 0.0 {
            match self.latency {
                Latency::Fixed(l) => fates.push(ChannelFate::Deliver { latency: l.max(1) }),
                Latency::UniformRounds { min, max } => {
                    let lo = min.max(1);
                    let hi = max.max(lo);
                    for latency in lo..=hi {
                        fates.push(ChannelFate::Deliver { latency });
                    }
                }
            }
        }
        fates
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig::reliable()
    }
}

/// Stream discriminator reserved for edge RNGs, far away from the
/// engine stream (0) and the per-process streams (`pid + 1`).
const EDGE_STREAM_TAG: u64 = 0xED6E_0000_0000_0001;

/// Stateless deterministic per-send RNGs for the live runtime's edge
/// draws: every send's fate comes from a fresh [`SmallRng`] keyed by
/// `(master seed, from, to, send tick, within-tick occurrence)`.
///
/// The live runtime samples channel fates on the sending side, where
/// thread interleaving would make a single shared stream
/// schedule-dependent. Keying the draw by the *edge* removes the worker
/// from the picture; keying it additionally by `(tick, occurrence)` —
/// counter mode, the same positional-determinism trick
/// `FailurePlan::churn_flips` uses for lifecycle draws — removes the
/// *stream position* too. The fate of the k-th same-edge send within a
/// tick is a pure function of the key, so resident state is a single
/// `u64` regardless of how many distinct edges a run touches (the
/// pre-existing design cached one 32-byte generator per directed edge,
/// `O(edges)` forever-growing memory).
///
/// **Draw-order version 2.** Counter-mode keys changed the live
/// substrate's fate sequences relative to the original sequential
/// per-edge streams (draw-order v1): the per-seed fates are still fully
/// deterministic and worker-count-independent, but they are not
/// byte-identical to v1's. Sim-vs-live parity is unaffected — the
/// simulator draws fates on its own engine stream, and every
/// cross-substrate comparison in the workspace is over delivered sets
/// or 3σ reliability bands, not live fate bytes. Committed live-side
/// figures were re-pinned when v2 shipped.
///
/// ```
/// use da_core::channel::EdgeRngs;
/// use rand::Rng as _;
///
/// let a = EdgeRngs::new(42);
/// let b = EdgeRngs::new(42);
/// let draw_a: u64 = a.draw_rng(3, 9, 5, 0).gen();
/// let draw_b: u64 = b.draw_rng(3, 9, 5, 0).gen();
/// assert_eq!(draw_a, draw_b, "same master seed, same key, same draw");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EdgeRngs {
    edge_master: u64,
}

impl EdgeRngs {
    /// Creates the draw family for a run with the given master seed.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        EdgeRngs {
            edge_master: derive_seed(master_seed, EDGE_STREAM_TAG),
        }
    }

    /// The seed of the `(from, to)` edge family (exposed for tests and
    /// for substrates that manage their own RNG storage).
    #[must_use]
    pub fn edge_seed(&self, from: u64, to: u64) -> u64 {
        derive_seed(derive_seed(self.edge_master, from), to)
    }

    /// The RNG for one send: the `occurrence`-th message (0-based) on
    /// the directed edge `from → to` within send tick `tick`. Pure in
    /// its arguments — no state is read or written, so the same key
    /// yields the same draws on any worker striping, in any order, any
    /// number of times.
    #[must_use]
    pub fn draw_rng(&self, from: u64, to: u64, tick: u64, occurrence: u64) -> SmallRng {
        rng_from_seed(derive_seed(
            derive_seed(self.edge_seed(from, to), tick),
            occurrence,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = ChannelConfig::default();
        assert!((c.success_probability - 1.0).abs() < f64::EPSILON);
        assert_eq!(c.latency, Latency::Fixed(1));
        assert!(c.is_perfect());
    }

    #[test]
    fn paper_default_is_085() {
        assert!((ChannelConfig::paper_default().success_probability - 0.85).abs() < 1e-12);
        assert!(!ChannelConfig::paper_default().is_perfect());
    }

    #[test]
    fn builder_clamps() {
        let c = ChannelConfig::default().with_success_probability(1.5);
        assert!((c.success_probability - 1.0).abs() < f64::EPSILON);
        let c = ChannelConfig::default().with_success_probability(-0.2);
        assert!(c.success_probability.abs() < f64::EPSILON);
    }

    #[test]
    fn latency_builder() {
        let c = ChannelConfig::default().with_latency(Latency::UniformRounds { min: 1, max: 3 });
        assert_eq!(c.latency, Latency::UniformRounds { min: 1, max: 3 });
        assert!(!c.is_perfect());
    }

    #[test]
    fn perfect_channel_draws_nothing() {
        // A perfect channel must consume zero randomness, so replays that
        // toggle it cannot shift other streams.
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(1);
        let fate = ChannelConfig::reliable().sample_fate(&mut a);
        assert_eq!(fate, ChannelFate::Deliver { latency: 1 });
        use rand::Rng as _;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn lossy_channel_loses_roughly_fraction() {
        let config = ChannelConfig::default().with_success_probability(0.5);
        let mut rng = rng_from_seed(5);
        let lost = (0..1000)
            .filter(|_| config.sample_fate(&mut rng) == ChannelFate::Lost)
            .count();
        assert!((350..650).contains(&lost), "lost {lost} of 1000");
    }

    #[test]
    fn uniform_latency_stays_in_bounds() {
        let config =
            ChannelConfig::default().with_latency(Latency::UniformRounds { min: 2, max: 5 });
        let mut rng = rng_from_seed(9);
        for _ in 0..500 {
            match config.sample_fate(&mut rng) {
                ChannelFate::Deliver { latency } => assert!((2..=5).contains(&latency)),
                ChannelFate::Lost => panic!("reliable channel lost a message"),
            }
        }
    }

    #[test]
    fn fixed_zero_latency_clamps_to_one() {
        let config = ChannelConfig::default().with_latency(Latency::Fixed(0));
        let mut rng = rng_from_seed(2);
        assert_eq!(
            config.sample_fate(&mut rng),
            ChannelFate::Deliver { latency: 1 }
        );
    }

    #[test]
    fn edge_draws_are_independent_and_reproducible() {
        use rand::Rng as _;
        let rngs = EdgeRngs::new(7);
        let ab: Vec<u64> = (0..8).map(|k| rngs.draw_rng(0, 1, 3, k).gen()).collect();
        let ba: Vec<u64> = (0..8).map(|k| rngs.draw_rng(1, 0, 3, k).gen()).collect();
        assert_ne!(ab, ba, "direction matters");

        let again = EdgeRngs::new(7);
        let ab2: Vec<u64> = (0..8).map(|k| again.draw_rng(0, 1, 3, k).gen()).collect();
        assert_eq!(ab, ab2, "same master seed, same keys, same draws");
    }

    #[test]
    fn edge_draws_are_keyed_by_tick_and_occurrence() {
        use rand::Rng as _;
        let rngs = EdgeRngs::new(7);
        let base: u64 = rngs.draw_rng(0, 1, 3, 0).gen();
        assert_ne!(base, rngs.draw_rng(0, 1, 4, 0).gen(), "tick matters");
        assert_ne!(base, rngs.draw_rng(0, 1, 3, 1).gen(), "occurrence matters");
        // Stateless: re-drawing the same key any number of times, in any
        // order, always replays the same stream from the top.
        let replay: u64 = rngs.draw_rng(0, 1, 3, 0).gen();
        assert_eq!(base, replay);
    }

    #[test]
    fn edge_rngs_resident_state_is_one_word() {
        // The whole point of counter-mode draws: resident state is O(1)
        // in the number of edges touched — the struct IS the seed.
        assert_eq!(std::mem::size_of::<EdgeRngs>(), 8);
    }

    #[test]
    fn max_latency_tracks_the_latency_model() {
        assert_eq!(ChannelConfig::reliable().max_latency(), 1);
        assert_eq!(
            ChannelConfig::reliable()
                .with_latency(Latency::Fixed(4))
                .max_latency(),
            4
        );
        assert_eq!(
            ChannelConfig::reliable()
                .with_latency(Latency::UniformRounds { min: 2, max: 9 })
                .max_latency(),
            9
        );
        // Degenerate bounds clamp exactly like sample_fate does.
        assert_eq!(
            ChannelConfig::reliable()
                .with_latency(Latency::UniformRounds { min: 4, max: 2 })
                .max_latency(),
            4
        );
    }

    #[test]
    fn min_latency_tracks_the_latency_model() {
        assert_eq!(ChannelConfig::reliable().min_latency(), 1);
        assert_eq!(
            ChannelConfig::reliable()
                .with_latency(Latency::Fixed(4))
                .min_latency(),
            4
        );
        assert_eq!(
            ChannelConfig::reliable()
                .with_latency(Latency::UniformRounds { min: 2, max: 9 })
                .min_latency(),
            2
        );
        // Degenerate bounds clamp exactly like sample_fate does.
        assert_eq!(
            ChannelConfig::reliable()
                .with_latency(Latency::UniformRounds { min: 0, max: 9 })
                .min_latency(),
            1
        );
    }

    #[test]
    fn enumerate_fates_covers_every_sampled_fate() {
        // Every fate sample_fate can draw must appear in the
        // enumeration, and the enumeration must not list unreachable
        // fates: drops only when lossy, latencies clamped identically.
        let configs = [
            ChannelConfig::reliable(),
            ChannelConfig::paper_default(),
            ChannelConfig::default().with_latency(Latency::Fixed(0)),
            ChannelConfig::default()
                .with_success_probability(0.5)
                .with_latency(Latency::UniformRounds { min: 0, max: 3 }),
            ChannelConfig::default().with_latency(Latency::UniformRounds { min: 4, max: 2 }),
        ];
        let mut rng = rng_from_seed(11);
        for config in configs {
            let enumerated = config.enumerate_fates();
            assert!(!enumerated.is_empty());
            for _ in 0..500 {
                let sampled = config.sample_fate(&mut rng);
                assert!(
                    enumerated.contains(&sampled),
                    "{sampled:?} sampled but not enumerated for {config:?}"
                );
            }
        }
    }

    #[test]
    fn enumerate_fates_orders_lost_then_ascending_latency() {
        let fates = ChannelConfig::default()
            .with_success_probability(0.9)
            .with_latency(Latency::UniformRounds { min: 1, max: 3 })
            .enumerate_fates();
        assert_eq!(
            fates,
            vec![
                ChannelFate::Lost,
                ChannelFate::Deliver { latency: 1 },
                ChannelFate::Deliver { latency: 2 },
                ChannelFate::Deliver { latency: 3 },
            ]
        );
        // A perfect channel has exactly one fate: no branching at all.
        assert_eq!(
            ChannelConfig::reliable().enumerate_fates(),
            vec![ChannelFate::Deliver { latency: 1 }]
        );
        // A fully dead channel only ever loses.
        assert_eq!(
            ChannelConfig::default()
                .with_success_probability(0.0)
                .enumerate_fates(),
            vec![ChannelFate::Lost]
        );
    }

    #[test]
    fn edge_seed_differs_from_process_streams() {
        // Edge streams must not collide with the engine stream (0) or
        // per-process streams (pid + 1) of the same master seed.
        let rngs = EdgeRngs::new(3);
        for pid in 0..64 {
            assert_ne!(rngs.edge_seed(0, 1), derive_seed(3, pid));
        }
    }
}
