//! Flat process storage with lazily-derived RNG streams, shared by both
//! execution substrates.
//!
//! Both the simulator engine and each live worker stripe used to hold a
//! `Vec<P>` of process states next to a parallel, eagerly-populated
//! `Vec<SmallRng>` — 32 bytes of generator state per process, paid at
//! spawn time whether or not the process ever draws. At million-process
//! scale that is 32 MB of RNG state per substrate *and* a full pass of
//! seed derivation before the first tick.
//!
//! [`ProcessStore`] keeps the dense, cache-friendly slab layout (local
//! index → process, exactly the `Vec` it replaces) but derives RNGs
//! lazily: [`rng_for_process`] is a pure function of `(master seed,
//! pid)`, so the stream of a process that has never drawn does not need
//! to exist. A slot materialises on first use and then persists, so
//! stream *positions* are preserved exactly — the k-th draw of a
//! process is identical whether its neighbours ever drew or not, and
//! identical to the eager layout's.

use crate::process::ProcessId;
use crate::seed::rng_for_process;
use rand::rngs::SmallRng;

/// A dense slab of process states plus lazily-materialised per-process
/// RNG streams, indexed by a substrate-local dense index.
///
/// The caller owns the local-index → [`ProcessId`] mapping (the
/// simulator's is the identity; a live worker stripe's is
/// `pid = worker + local × stride`), so accessors that may materialise
/// an RNG take the pid alongside the local index.
///
/// ```
/// use da_core::store::ProcessStore;
/// use da_core::{rng_for_process, ProcessId};
/// use rand::Rng as _;
///
/// let mut store: ProcessStore<u32> = ProcessStore::new(42);
/// store.push(7);
/// assert_eq!(store.rng_resident(), 0, "nothing materialised at spawn");
/// let lazy: u64 = store.rng(0, ProcessId(0)).gen();
/// let mut eager = rng_for_process(42, ProcessId(0));
/// assert_eq!(lazy, eager.gen::<u64>(), "same stream as the eager layout");
/// assert_eq!(store.rng_resident(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ProcessStore<P> {
    seed: u64,
    procs: Vec<P>,
    rngs: Vec<Option<SmallRng>>,
}

impl<P> ProcessStore<P> {
    /// An empty store whose RNG streams derive from `master_seed` (the
    /// run's master seed — the same one [`rng_for_process`] takes).
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        ProcessStore {
            seed: master_seed,
            procs: Vec::new(),
            rngs: Vec::new(),
        }
    }

    /// An empty store with room for `capacity` processes.
    #[must_use]
    pub fn with_capacity(master_seed: u64, capacity: usize) -> Self {
        ProcessStore {
            seed: master_seed,
            procs: Vec::with_capacity(capacity),
            rngs: Vec::with_capacity(capacity),
        }
    }

    /// Appends a process; its RNG slot starts empty.
    pub fn push(&mut self, process: P) {
        self.procs.push(process);
        self.rngs.push(None);
    }

    /// Number of processes stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True when the store holds no processes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// The process at `local`.
    #[must_use]
    pub fn get(&self, local: usize) -> &P {
        &self.procs[local]
    }

    /// The process at `local`, mutably.
    pub fn get_mut(&mut self, local: usize) -> &mut P {
        &mut self.procs[local]
    }

    /// Iterates the process states in local-index order.
    pub fn iter(&self) -> std::slice::Iter<'_, P> {
        self.procs.iter()
    }

    /// Iterates the process states mutably in local-index order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, P> {
        self.procs.iter_mut()
    }

    /// The process slab as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[P] {
        &self.procs
    }

    /// The RNG stream of the process at `local` (which must be the
    /// local slot of `pid`), materialising it on first use.
    pub fn rng(&mut self, local: usize, pid: ProcessId) -> &mut SmallRng {
        let seed = self.seed;
        self.rngs[local].get_or_insert_with(|| rng_for_process(seed, pid))
    }

    /// Split borrow for the delivery/round hot path: the process at
    /// `local` and its RNG stream, in one call, without aliasing
    /// conflicts between the two slabs.
    pub fn pair_mut(&mut self, local: usize, pid: ProcessId) -> (&mut P, &mut SmallRng) {
        let seed = self.seed;
        let rng = self.rngs[local].get_or_insert_with(|| rng_for_process(seed, pid));
        (&mut self.procs[local], rng)
    }

    /// A clone of the process's RNG stream *at its current position*,
    /// without materialising the slot: a stream that never drew is
    /// indistinguishable from one never materialised, so state digests
    /// probing streams through this are invariant to which slots happen
    /// to be resident.
    #[must_use]
    pub fn probe_rng(&self, local: usize, pid: ProcessId) -> SmallRng {
        match &self.rngs[local] {
            Some(rng) => rng.clone(),
            None => rng_for_process(self.seed, pid),
        }
    }

    /// Number of RNG slots materialised so far — the store's resident
    /// generator state is 32 bytes times this, not times [`len`](Self::len).
    #[must_use]
    pub fn rng_resident(&self) -> usize {
        self.rngs.iter().filter(|slot| slot.is_some()).count()
    }

    /// Consumes the store, returning the process slab.
    #[must_use]
    pub fn into_processes(self) -> Vec<P> {
        self.procs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn lazy_rng_matches_eager_derivation() {
        let mut store: ProcessStore<u8> = ProcessStore::new(9);
        for i in 0..4 {
            store.push(i);
        }
        // Touch streams out of order; each must replay its eager twin.
        for local in [2usize, 0, 3, 1] {
            let pid = ProcessId::from_index(local);
            let mut eager = rng_for_process(9, pid);
            let eager_draws: Vec<u64> = (0..4).map(|_| eager.gen()).collect();
            let lazy_draws: Vec<u64> = (0..4).map(|_| store.rng(local, pid).gen()).collect();
            assert_eq!(lazy_draws, eager_draws, "local {local}");
        }
        assert_eq!(store.rng_resident(), 4);
    }

    #[test]
    fn rng_position_persists_across_calls() {
        let mut store: ProcessStore<u8> = ProcessStore::new(3);
        store.push(0);
        let first: u64 = store.rng(0, ProcessId(0)).gen();
        let second: u64 = store.rng(0, ProcessId(0)).gen();
        assert_ne!(first, second, "stream advances, not restarts");
    }

    #[test]
    fn probe_is_materialisation_invariant() {
        let mut touched: ProcessStore<u8> = ProcessStore::new(5);
        let untouched: ProcessStore<u8> = {
            let mut s = ProcessStore::new(5);
            s.push(0);
            s
        };
        touched.push(0);
        // Materialise without drawing: position is still the stream head.
        let _ = touched.rng(0, ProcessId(0));
        assert_eq!(touched.rng_resident(), 1);
        assert_eq!(untouched.rng_resident(), 0);
        let mut a = touched.probe_rng(0, ProcessId(0));
        let mut b = untouched.probe_rng(0, ProcessId(0));
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn pair_mut_splits_the_borrow() {
        let mut store: ProcessStore<Vec<u64>> = ProcessStore::new(1);
        store.push(Vec::new());
        let (proc_state, rng) = store.pair_mut(0, ProcessId(0));
        proc_state.push(rng.gen());
        assert_eq!(store.get(0).len(), 1);
    }

    #[test]
    fn clone_preserves_positions_and_residency() {
        let mut store: ProcessStore<u8> = ProcessStore::new(7);
        store.push(0);
        store.push(1);
        let _: u64 = store.rng(0, ProcessId(0)).gen();
        let mut fork = store.clone();
        assert_eq!(fork.rng_resident(), 1);
        assert_eq!(
            fork.rng(0, ProcessId(0)).gen::<u64>(),
            store.rng(0, ProcessId(0)).gen::<u64>(),
            "forked universes draw in lockstep"
        );
    }

    #[test]
    fn into_processes_returns_the_slab() {
        let mut store: ProcessStore<u8> = ProcessStore::new(0);
        store.push(4);
        store.push(5);
        assert_eq!(store.into_processes(), vec![4, 5]);
    }
}
