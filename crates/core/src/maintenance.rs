//! The maintenance task (`KEEP_TABLE_UPDATED`, Fig. 6 of the paper).
//!
//! Runs repeatedly: with probability `p_sel` the process checks the
//! liveness of its supertable entries (via ping/pong timeouts, footnote 7);
//! if the number of live entries drops to the threshold `τ` or below, it
//! asks the live superprocesses for fresh contacts (`NEWPROCESS`,
//! lines 18–21). When the table is empty the bootstrap restarts
//! (lines 12–14).

use da_simnet::ProcessId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What the embedding protocol should do for the maintenance task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintenanceAction {
    /// Send liveness pings (with this nonce) to these supertable entries.
    Ping {
        /// Correlation nonce for this check cycle.
        nonce: u64,
        /// Targets to probe.
        targets: Vec<ProcessId>,
    },
    /// Ask these live superprocesses for fresh supergroup contacts and
    /// drop the dead entries listed.
    Refresh {
        /// Entries that answered the last check — recipients of
        /// `NEWPROCESS` requests.
        alive: Vec<ProcessId>,
        /// Entries that failed the check — to be removed from the table.
        dead: Vec<ProcessId>,
    },
    /// The supertable is empty: restart `FIND_SUPER_CONTACT`.
    RestartBootstrap,
    /// Nothing to do this round.
    Idle,
}

/// Internal phase of the check cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Phase {
    Idle,
    AwaitingPongs { nonce: u64, sent_at: u64 },
}

/// State machine of `KEEP_TABLE_UPDATED`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaintenanceTask {
    period: u64,
    ping_timeout: u64,
    phase: Phase,
    /// Round of the last pong heard, per peer.
    last_pong: HashMap<ProcessId, u64>,
    next_nonce: u64,
}

impl MaintenanceTask {
    /// Creates a task running every `period` rounds with the given ping
    /// timeout.
    #[must_use]
    pub fn new(period: u64, ping_timeout: u64) -> Self {
        MaintenanceTask {
            period: period.max(1),
            ping_timeout: ping_timeout.max(1),
            phase: Phase::Idle,
            last_pong: HashMap::new(),
            next_nonce: 0,
        }
    }

    /// Records a pong from `from` at `round`.
    pub fn on_pong(&mut self, from: ProcessId, round: u64) {
        self.last_pong.insert(from, round);
    }

    /// Round hook. `stable_entries` is the current supertable content;
    /// `selected` is the outcome of the paper's `RAND() vs p_sel` draw
    /// (passed in so the caller controls the RNG stream); `tau` the
    /// refresh threshold.
    pub fn on_round(
        &mut self,
        round: u64,
        stable_entries: &[ProcessId],
        selected: bool,
        tau: usize,
    ) -> MaintenanceAction {
        // Resolution of an in-flight check takes priority.
        if let Phase::AwaitingPongs { sent_at, .. } = self.phase {
            if round.saturating_sub(sent_at) >= self.ping_timeout {
                self.phase = Phase::Idle;
                let (alive, dead): (Vec<ProcessId>, Vec<ProcessId>) = stable_entries
                    .iter()
                    .partition(|&&p| self.last_pong.get(&p).is_some_and(|&r| r >= sent_at));
                // The paper's CHECK(sTable) ≤ τ condition (line 18).
                if alive.len() <= tau {
                    return MaintenanceAction::Refresh { alive, dead };
                }
            }
            return MaintenanceAction::Idle;
        }

        if !round.is_multiple_of(self.period) {
            return MaintenanceAction::Idle;
        }
        if stable_entries.is_empty() {
            return MaintenanceAction::RestartBootstrap;
        }
        if !selected {
            return MaintenanceAction::Idle;
        }
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        self.phase = Phase::AwaitingPongs {
            nonce,
            sent_at: round,
        };
        MaintenanceAction::Ping {
            nonce,
            targets: stable_entries.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(ids: &[u32]) -> Vec<ProcessId> {
        ids.iter().map(|&i| ProcessId(i)).collect()
    }

    #[test]
    fn empty_table_restarts_bootstrap() {
        let mut t = MaintenanceTask::new(5, 2);
        assert_eq!(
            t.on_round(0, &[], true, 1),
            MaintenanceAction::RestartBootstrap
        );
        // Off-period rounds stay idle even with an empty table.
        assert_eq!(t.on_round(1, &[], true, 1), MaintenanceAction::Idle);
    }

    #[test]
    fn unselected_process_stays_idle() {
        let mut t = MaintenanceTask::new(5, 2);
        assert_eq!(
            t.on_round(0, &entries(&[1, 2]), false, 1),
            MaintenanceAction::Idle
        );
    }

    #[test]
    fn selected_process_pings_everyone() {
        let mut t = MaintenanceTask::new(5, 2);
        match t.on_round(0, &entries(&[1, 2, 3]), true, 1) {
            MaintenanceAction::Ping { targets, .. } => {
                assert_eq!(targets, entries(&[1, 2, 3]));
            }
            other => panic!("expected Ping, got {other:?}"),
        }
    }

    #[test]
    fn all_alive_needs_no_refresh() {
        let mut t = MaintenanceTask::new(5, 2);
        t.on_round(0, &entries(&[1, 2]), true, 1);
        t.on_pong(ProcessId(1), 1);
        t.on_pong(ProcessId(2), 1);
        // Timeout expires at round 2; both answered; 2 > τ=1 → no refresh.
        assert_eq!(
            t.on_round(2, &entries(&[1, 2]), true, 1),
            MaintenanceAction::Idle
        );
    }

    #[test]
    fn refresh_when_alive_at_or_below_tau() {
        let mut t = MaintenanceTask::new(5, 2);
        t.on_round(0, &entries(&[1, 2, 3]), true, 1);
        t.on_pong(ProcessId(2), 1);
        match t.on_round(2, &entries(&[1, 2, 3]), true, 1) {
            MaintenanceAction::Refresh { alive, dead } => {
                assert_eq!(alive, entries(&[2]));
                assert_eq!(dead.len(), 2);
                assert!(dead.contains(&ProcessId(1)));
                assert!(dead.contains(&ProcessId(3)));
            }
            other => panic!("expected Refresh, got {other:?}"),
        }
    }

    #[test]
    fn stale_pongs_do_not_count() {
        let mut t = MaintenanceTask::new(5, 2);
        // Peer 1 answered long ago (round 0)...
        t.on_pong(ProcessId(1), 0);
        // ...a new check starts at round 5.
        t.on_round(5, &entries(&[1]), true, 0);
        match t.on_round(7, &entries(&[1]), true, 0) {
            MaintenanceAction::Refresh { alive, dead } => {
                assert!(alive.is_empty(), "round-0 pong predates the round-5 check");
                assert_eq!(dead, entries(&[1]));
            }
            other => panic!("expected Refresh, got {other:?}"),
        }
    }

    #[test]
    fn no_double_check_while_awaiting() {
        let mut t = MaintenanceTask::new(1, 5);
        assert!(matches!(
            t.on_round(0, &entries(&[1]), true, 0),
            MaintenanceAction::Ping { .. }
        ));
        // Period elapses again, but the check is still in flight.
        assert_eq!(
            t.on_round(1, &entries(&[1]), true, 0),
            MaintenanceAction::Idle
        );
    }

    #[test]
    fn nonces_increment() {
        let mut t = MaintenanceTask::new(1, 1);
        let n1 = match t.on_round(0, &entries(&[1]), true, 0) {
            MaintenanceAction::Ping { nonce, .. } => nonce,
            other => panic!("{other:?}"),
        };
        t.on_pong(ProcessId(1), 0);
        t.on_round(1, &entries(&[1]), true, 0); // resolves: alive > τ? alive=1 > 0 → Idle
        let n2 = match t.on_round(2, &entries(&[1]), true, 0) {
            MaintenanceAction::Ping { nonce, .. } => nonce,
            other => panic!("{other:?}"),
        };
        assert!(n2 > n1);
    }
}
