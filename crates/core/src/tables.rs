//! The supertopic table (`sTable` in the paper).
//!
//! Each process interested in `Ti` keeps a constant-size table of `z`
//! contacts belonging to a group *including* `Ti` — usually `super(Ti)`,
//! but possibly a higher ancestor when no direct superprocess exists
//! (Sec. V-A.1, footnote 4). The table records, per entry, which topic the
//! contact is interested in, so maintenance can tell whether the link can
//! still be tightened toward the direct supertopic.

use da_simnet::ProcessId;
use da_topics::TopicId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One supertable entry: a contact and the (ancestor) topic it is
/// interested in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SuperEntry {
    /// The superprocess.
    pub pid: ProcessId,
    /// The topic the superprocess is interested in.
    pub topic: TopicId,
}

/// The constant-size supertopic table.
///
/// Invariants: no self-reference, no duplicate process ids, at most `z`
/// entries.
///
/// ```
/// use damulticast::{SuperEntry, SuperTable};
/// use da_simnet::{rng_from_seed, ProcessId};
/// use da_topics::TopicId;
///
/// let mut table = SuperTable::new(ProcessId(0), 2);
/// let mut rng = rng_from_seed(1);
/// table.insert(SuperEntry { pid: ProcessId(1), topic: TopicId::ROOT }, &mut rng);
/// assert_eq!(table.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuperTable {
    owner: ProcessId,
    capacity: usize,
    entries: Vec<SuperEntry>,
}

impl SuperTable {
    /// Creates an empty supertable of capacity `z` owned by `owner`.
    #[must_use]
    pub fn new(owner: ProcessId, z: usize) -> Self {
        SuperTable {
            owner,
            capacity: z,
            entries: Vec::with_capacity(z),
        }
    }

    /// The owning process.
    #[must_use]
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// The capacity `z`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries as a slice.
    #[must_use]
    pub fn entries(&self) -> &[SuperEntry] {
        &self.entries
    }

    /// True when `pid` is listed.
    #[must_use]
    pub fn contains(&self, pid: ProcessId) -> bool {
        self.entries.iter().any(|e| e.pid == pid)
    }

    /// Inserts an entry, evicting a random resident when full. Rejects
    /// self-references and duplicate pids. Returns true when inserted.
    pub fn insert<R: Rng>(&mut self, entry: SuperEntry, rng: &mut R) -> bool {
        if entry.pid == self.owner || self.contains(entry.pid) || self.capacity == 0 {
            return false;
        }
        if self.entries.len() >= self.capacity {
            let victim = rng.gen_range(0..self.entries.len());
            self.entries.swap_remove(victim);
        }
        self.entries.push(entry);
        true
    }

    /// Removes the entry for `pid`, if present.
    pub fn remove(&mut self, pid: ProcessId) -> bool {
        if let Some(pos) = self.entries.iter().position(|e| e.pid == pid) {
            self.entries.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// The paper's `MERGE` (footnote 5): keeps the "favorite" (still alive)
    /// entries and replaces failed ones with fresh contacts. `alive`
    /// decides which residents survive; `fresh` entries then fill the
    /// remaining capacity.
    ///
    /// Returns the number of fresh entries absorbed.
    pub fn merge<F>(&mut self, fresh: &[SuperEntry], mut alive: F) -> usize
    where
        F: FnMut(ProcessId) -> bool,
    {
        self.entries.retain(|e| alive(e.pid));
        let mut absorbed = 0;
        for &entry in fresh {
            if self.entries.len() >= self.capacity {
                break;
            }
            if entry.pid != self.owner && !self.contains(entry.pid) {
                self.entries.push(entry);
                absorbed += 1;
            }
        }
        absorbed
    }

    /// Prefers entries of topics *nearer* the owner's topic: when a fresh
    /// entry is interested in a strictly deeper (more specific) ancestor
    /// than a resident, the resident is replaced. Used when the bootstrap
    /// found only a distant ancestor first and a direct superprocess shows
    /// up later.
    ///
    /// `depth_of` maps a topic to its depth in the hierarchy.
    pub fn tighten<D>(&mut self, fresh: &[SuperEntry], depth_of: D)
    where
        D: Fn(TopicId) -> usize,
    {
        for &entry in fresh {
            if entry.pid == self.owner || self.contains(entry.pid) {
                continue;
            }
            if self.entries.len() < self.capacity {
                self.entries.push(entry);
                continue;
            }
            // Replace the shallowest (most distant) resident if the fresh
            // entry is strictly deeper.
            if let Some((idx, shallowest)) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| depth_of(e.topic))
            {
                if depth_of(entry.topic) > depth_of(shallowest.topic) {
                    self.entries[idx] = entry;
                }
            }
        }
    }

    /// Samples up to `k` distinct entries.
    pub fn sample<R: Rng>(&self, k: usize, rng: &mut R) -> Vec<SuperEntry> {
        let mut pool = self.entries.clone();
        pool.shuffle(rng);
        pool.truncate(k);
        pool
    }

    /// The deepest topic level among entries, if any — the closest group
    /// the owner is currently linked to.
    #[must_use]
    pub fn closest_topic<D>(&self, depth_of: D) -> Option<TopicId>
    where
        D: Fn(TopicId) -> usize,
    {
        self.entries
            .iter()
            .max_by_key(|e| depth_of(e.topic))
            .map(|e| e.topic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::rng_from_seed;

    fn entry(pid: u32, topic: usize) -> SuperEntry {
        SuperEntry {
            pid: ProcessId(pid),
            topic: TopicId::from_index(topic),
        }
    }

    #[test]
    fn rejects_self_and_duplicates() {
        let mut rng = rng_from_seed(1);
        let mut t = SuperTable::new(ProcessId(0), 3);
        assert!(!t.insert(entry(0, 0), &mut rng), "self rejected");
        assert!(t.insert(entry(1, 0), &mut rng));
        assert!(!t.insert(entry(1, 0), &mut rng), "duplicate rejected");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn capacity_enforced_with_eviction() {
        let mut rng = rng_from_seed(2);
        let mut t = SuperTable::new(ProcessId(0), 2);
        for i in 1..=5 {
            t.insert(entry(i, 0), &mut rng);
            assert!(t.len() <= 2);
        }
        assert!(t.contains(ProcessId(5)), "newest always resident");
    }

    #[test]
    fn merge_keeps_alive_and_fills_with_fresh() {
        let mut rng = rng_from_seed(3);
        let mut t = SuperTable::new(ProcessId(0), 3);
        t.insert(entry(1, 0), &mut rng);
        t.insert(entry(2, 0), &mut rng);
        t.insert(entry(3, 0), &mut rng);
        // 2 is dead; fresh contacts 4, 5 offered.
        let absorbed = t.merge(&[entry(4, 0), entry(5, 0)], |p| p != ProcessId(2));
        assert_eq!(absorbed, 1, "one slot was freed");
        assert!(t.contains(ProcessId(1)));
        assert!(t.contains(ProcessId(3)));
        assert!(t.contains(ProcessId(4)));
        assert!(!t.contains(ProcessId(2)));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn merge_skips_duplicates_and_self() {
        let mut rng = rng_from_seed(4);
        let mut t = SuperTable::new(ProcessId(0), 4);
        t.insert(entry(1, 0), &mut rng);
        let absorbed = t.merge(&[entry(1, 0), entry(0, 0), entry(2, 0)], |_| true);
        assert_eq!(absorbed, 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn tighten_prefers_deeper_topics() {
        let mut rng = rng_from_seed(5);
        let mut t = SuperTable::new(ProcessId(0), 2);
        // Entries at the root (depth 0) — the distant fallback.
        t.insert(entry(1, 0), &mut rng);
        t.insert(entry(2, 0), &mut rng);
        // A direct superprocess at depth 1 appears.
        t.tighten(&[entry(3, 1)], |topic| topic.index());
        assert!(t.contains(ProcessId(3)));
        assert_eq!(t.len(), 2);
        // A shallower candidate does not displace a deeper resident.
        t.tighten(&[entry(4, 0)], |topic| topic.index());
        assert!(!t.contains(ProcessId(4)));
    }

    #[test]
    fn closest_topic_is_deepest() {
        let mut rng = rng_from_seed(6);
        let mut t = SuperTable::new(ProcessId(0), 3);
        assert_eq!(t.closest_topic(|t| t.index()), None);
        t.insert(entry(1, 0), &mut rng);
        t.insert(entry(2, 2), &mut rng);
        t.insert(entry(3, 1), &mut rng);
        assert_eq!(t.closest_topic(|t| t.index()), Some(TopicId::from_index(2)));
    }

    #[test]
    fn sample_distinct() {
        let mut rng = rng_from_seed(7);
        let mut t = SuperTable::new(ProcessId(0), 5);
        for i in 1..=5 {
            t.insert(entry(i, 0), &mut rng);
        }
        let s = t.sample(3, &mut rng);
        assert_eq!(s.len(), 3);
        let mut pids: Vec<_> = s.iter().map(|e| e.pid).collect();
        pids.sort();
        pids.dedup();
        assert_eq!(pids.len(), 3);
    }

    #[test]
    fn remove_entries() {
        let mut rng = rng_from_seed(8);
        let mut t = SuperTable::new(ProcessId(0), 3);
        t.insert(entry(1, 0), &mut rng);
        assert!(t.remove(ProcessId(1)));
        assert!(!t.remove(ProcessId(1)));
        assert!(t.is_empty());
    }
}
