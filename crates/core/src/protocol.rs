//! The daMulticast process — the protocol state machine of Figs. 4–7.
//!
//! A [`DaProcess`] implements [`da_simnet::Protocol`] and combines
//!
//! * the **topic table** — a [`FlatMembership`] partial view of the
//!   process' own group (the underlying membership algorithm of the
//!   paper's reference \[10\]),
//! * the **supertopic table** — a constant-size [`SuperTable`] of contacts
//!   in an including group,
//! * the **bootstrap task** (`FIND_SUPER_CONTACT`, Fig. 4), flooding the
//!   weakly-consistent neighbourhood overlay for super contacts,
//! * the **maintenance task** (`KEEP_TABLE_UPDATED`, Fig. 6), probing
//!   supertable liveness and refreshing dead links, and
//! * the **dissemination scheme** (Figs. 5 & 7) with event de-duplication.
//!
//! Two operating modes:
//!
//! * **static** ([`DaProcess::static_member`]) — the paper's simulation
//!   mode (Sec. VII-A): tables are fixed at construction, no membership,
//!   bootstrap or maintenance traffic is generated. Used to regenerate the
//!   paper's figures.
//! * **dynamic** ([`DaProcess::dynamic_member`]) — the full protocol:
//!   joins through contacts, gossips membership digests with piggybacked
//!   supertable samples, searches super contacts through the overlay and
//!   maintains them under churn. Used by the examples and the end-to-end
//!   tests.

use crate::bootstrap::{BootstrapAction, BootstrapTask};
use crate::dissemination::plan_dissemination;
use crate::event::{Event, EventId};
use crate::exec::{Exec, ExecProtocol};
use crate::maintenance::{MaintenanceAction, MaintenanceTask};
use crate::message::DaMsg;
use crate::params::TopicParams;
use crate::tables::{SuperEntry, SuperTable};
use da_membership::{FlatMembership, MembershipParams};
use da_simnet::mc::McHash;
use da_simnet::{Ctx, FxHasher, Overlay, ProcessId, Protocol};
use da_topics::{TopicHierarchy, TopicId};
use std::collections::HashSet;
use std::hash::Hasher;
use std::sync::Arc;

/// Pre-rendered counter labels for one process (the metrics hot path does
/// string lookups; rendering `da.intra.<path>` per send would allocate).
#[derive(Debug, Clone)]
struct Labels {
    /// Event messages gossiped inside the own group.
    intra: String,
    /// Event messages sent to supertable entries.
    inter_out: String,
    /// Event messages that arrived from a strict subtopic group.
    inter_in: String,
    /// Events delivered to the application.
    delivered: String,
    /// Events received more than once.
    duplicate: String,
    /// Control-plane messages (bootstrap, maintenance, membership).
    control: String,
}

impl Labels {
    fn new(topic_path: &str) -> Self {
        Labels {
            intra: format!("da.intra.{topic_path}"),
            inter_out: format!("da.inter_out.{topic_path}"),
            inter_in: format!("da.inter_in.{topic_path}"),
            delivered: format!("da.delivered.{topic_path}"),
            duplicate: format!("da.duplicate.{topic_path}"),
            control: format!("da.control.{topic_path}"),
        }
    }
}

/// The daMulticast protocol instance at one simulated process.
///
/// See the crate-level documentation for a full example; in short:
///
/// ```
/// use damulticast::{DaProcess, TopicParams};
/// use da_membership::MembershipParams;
/// use da_simnet::ProcessId;
/// use da_topics::TopicHierarchy;
/// use std::sync::Arc;
///
/// let (hierarchy, ids) = TopicHierarchy::linear_chain(2);
/// let hierarchy = Arc::new(hierarchy);
/// let p = DaProcess::static_member(
///     ProcessId(0),
///     ids[1],
///     Arc::clone(&hierarchy),
///     TopicParams::paper_default(),
///     100,               // S_T1
///     vec![ProcessId(1)],// topic table
///     vec![],            // supertable (empty: nearest the root)
/// );
/// assert_eq!(p.topic(), ids[1]);
/// ```
#[derive(Debug, Clone)]
pub struct DaProcess {
    me: ProcessId,
    topic: TopicId,
    hierarchy: Arc<TopicHierarchy>,
    params: TopicParams,
    /// The topic table (partial view of the own group).
    membership: FlatMembership,
    /// The supertopic table.
    stable: SuperTable,
    /// `S_Ti` — the size estimate used for `p_sel` and the fanout.
    group_size: usize,
    /// Dynamic-mode tasks; `None` in static mode.
    bootstrap: Option<BootstrapTask>,
    maintenance: Option<MaintenanceTask>,
    /// Overlay neighbourhood used by the bootstrap flood (dynamic mode).
    overlay: Option<Arc<Overlay>>,
    /// Initial same-group contacts to join through (dynamic mode).
    join_contacts: Vec<ProcessId>,
    /// Event ids already received (the paper's "done only the first time").
    seen: HashSet<EventId>,
    /// Events delivered to the application, in delivery order.
    delivered: Vec<Event>,
    /// Events received for a topic this process is *not* interested in.
    /// The paper's central claim is that this stays zero.
    parasite_count: u64,
    /// Publications queued until the next round hook.
    pending_publish: Vec<Event>,
    next_sequence: u64,
    /// Bootstrap requests already answered/forwarded: `(origin, req_id)`.
    answered_requests: HashSet<(ProcessId, u64)>,
    labels: Labels,
    /// Deliberate protocol defect, [`Mutation::None`] in production.
    mutation: Mutation,
}

/// A deliberately broken protocol variant, used to prove the bounded
/// model checker can actually find bugs (a checker that passes
/// everything proves nothing). Production code paths always run with
/// [`Mutation::None`]; the mutants exist for `da_simnet::mc` mutation
/// tests and are expected to yield counterexamples within small depth
/// bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Mutation {
    /// The shipped protocol, unmodified.
    #[default]
    None,
    /// Skips the Fig. 5 "done only the first time" de-dup check on
    /// reception: every duplicate is re-delivered and re-disseminated,
    /// so the gossip echoes forever and processes deliver the same
    /// event many times.
    SkipDedup,
}

impl Mutation {
    fn skips_dedup(self) -> bool {
        matches!(self, Mutation::SkipDedup)
    }
}

impl DaProcess {
    /// Builds a static-mode process (the paper's Sec. VII-A simulation
    /// setting): `topic_table` and `super_entries` are fixed for the whole
    /// run and no control traffic is generated.
    ///
    /// `super_entries` lists contacts in the nearest non-empty ancestor
    /// group, tagged with that ancestor's topic; pass an empty vector for
    /// root-group members.
    #[must_use]
    pub fn static_member(
        me: ProcessId,
        topic: TopicId,
        hierarchy: Arc<TopicHierarchy>,
        params: TopicParams,
        group_size: usize,
        topic_table: Vec<ProcessId>,
        super_entries: Vec<SuperEntry>,
    ) -> Self {
        let mparams = MembershipParams {
            b: params.b,
            expected_group_size: group_size,
            // Static mode: the membership component is a passive container.
            digest_fanout: 0,
            digest_size: 0,
            gossip_period: 0,
            eviction_age: u64::MAX,
        };
        let mut seed_rng = da_simnet::rng_for_process(0xDA, me);
        let membership = FlatMembership::with_static_view(me, mparams, &topic_table, &mut seed_rng);
        let mut stable = SuperTable::new(me, params.z.max(super_entries.len()));
        for entry in super_entries {
            stable.insert(entry, &mut seed_rng);
        }
        let labels = Labels::new(hierarchy.path(topic).as_str());
        DaProcess {
            me,
            topic,
            hierarchy,
            params,
            membership,
            stable,
            group_size,
            bootstrap: None,
            maintenance: None,
            overlay: None,
            join_contacts: Vec::new(),
            seen: HashSet::new(),
            delivered: Vec::new(),
            parasite_count: 0,
            pending_publish: Vec::new(),
            next_sequence: 0,
            answered_requests: HashSet::new(),
            labels,
            mutation: Mutation::None,
        }
    }

    /// Builds a dynamic-mode process running the full protocol: it joins
    /// its group through `join_contacts`, finds super contacts by flooding
    /// `overlay`, and keeps both tables fresh.
    #[must_use]
    pub fn dynamic_member(
        me: ProcessId,
        topic: TopicId,
        hierarchy: Arc<TopicHierarchy>,
        params: TopicParams,
        membership_params: MembershipParams,
        overlay: Arc<Overlay>,
        join_contacts: Vec<ProcessId>,
    ) -> Self {
        let membership = FlatMembership::new(me, membership_params);
        let stable = SuperTable::new(me, params.z);
        let bootstrap = BootstrapTask::new(topic, &hierarchy, params.bootstrap_timeout);
        let maintenance = Some(MaintenanceTask::new(
            params.maintenance_period,
            params.ping_timeout,
        ));
        let labels = Labels::new(hierarchy.path(topic).as_str());
        DaProcess {
            me,
            topic,
            hierarchy,
            params,
            membership,
            stable,
            group_size: membership_params.expected_group_size,
            bootstrap,
            maintenance,
            overlay: Some(overlay),
            join_contacts,
            seen: HashSet::new(),
            delivered: Vec::new(),
            parasite_count: 0,
            pending_publish: Vec::new(),
            next_sequence: 0,
            answered_requests: HashSet::new(),
            labels,
            mutation: Mutation::None,
        }
    }

    /// Installs a deliberate defect for mutation testing. See
    /// [`Mutation`]; never used by production configurations.
    #[must_use]
    pub fn with_mutation(mut self, mutation: Mutation) -> Self {
        self.mutation = mutation;
        self
    }

    /// The process' identity.
    #[must_use]
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// The topic this process is interested in.
    #[must_use]
    pub fn topic(&self) -> TopicId {
        self.topic
    }

    /// The protocol parameters in force at this process.
    #[must_use]
    pub fn params(&self) -> &TopicParams {
        &self.params
    }

    /// The current topic table (partial view of the own group).
    #[must_use]
    pub fn topic_table(&self) -> &[ProcessId] {
        self.membership.view().as_slice()
    }

    /// The current supertopic table.
    #[must_use]
    pub fn super_table(&self) -> &SuperTable {
        &self.stable
    }

    /// Events delivered to the application so far, in delivery order.
    #[must_use]
    pub fn delivered(&self) -> &[Event] {
        &self.delivered
    }

    /// True when the event has been delivered here.
    #[must_use]
    pub fn has_delivered(&self, id: EventId) -> bool {
        self.delivered.iter().any(|e| e.id() == id)
    }

    /// Drains the delivered-event log, handing ownership to the caller —
    /// the pull-style application interface (`deliver e_Ti to the
    /// application`, Fig. 5). De-duplication state is unaffected: drained
    /// events are never delivered twice.
    pub fn take_delivered(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.delivered)
    }

    /// Number of parasite receptions — events of topics this process is
    /// not interested in. daMulticast's invariant is that this is zero.
    #[must_use]
    pub fn parasite_count(&self) -> u64 {
        self.parasite_count
    }

    /// Queues an event for publication on this process' own topic. The
    /// event is delivered locally and disseminated at the next round hook.
    /// Returns the event's id.
    pub fn publish(&mut self, payload: impl Into<bytes::Bytes>) -> EventId {
        let event = Event::new(self.me, self.next_sequence, self.topic, payload);
        self.next_sequence += 1;
        let id = event.id();
        self.pending_publish.push(event);
        id
    }

    /// The per-process memory complexity in table entries:
    /// `|Table| + |sTable|` — the paper's `ln(S) + c + z` bound
    /// (Sec. VI-C).
    #[must_use]
    pub fn memory_entries(&self) -> usize {
        self.membership.view().len() + self.stable.len()
    }

    /// True when this process is interested in events of `topic` — i.e.
    /// `topic` is its own topic or a subtopic thereof.
    #[must_use]
    pub fn is_interested_in(&self, topic: TopicId) -> bool {
        self.hierarchy.includes_or_eq(self.topic, topic)
    }

    /// Sends `msg` and accounts it as control-plane traffic.
    fn send_control<X: Exec<Msg = DaMsg>>(&self, ctx: &mut X, to: ProcessId, msg: DaMsg) {
        ctx.bump(&self.labels.control);
        ctx.send(to, msg);
    }

    /// Runs Fig. 7 for `event` and emits the resulting messages.
    fn disseminate<X: Exec<Msg = DaMsg>>(&mut self, event: &Event, ctx: &mut X) {
        let plan = plan_dissemination(
            &self.params,
            self.group_size,
            self.membership.view().as_slice(),
            &self.stable,
            ctx.rng(),
        );
        for entry in &plan.super_targets {
            ctx.bump(&self.labels.inter_out);
            ctx.send(
                entry.pid,
                DaMsg::Event {
                    event: event.clone(),
                    sender_topic: self.topic,
                },
            );
        }
        for &target in &plan.gossip_targets {
            ctx.bump(&self.labels.intra);
            ctx.send(
                target,
                DaMsg::Event {
                    event: event.clone(),
                    sender_topic: self.topic,
                },
            );
        }
    }

    /// First-reception handling (Fig. 5): de-dup, deliver, re-disseminate.
    fn receive_event<X: Exec<Msg = DaMsg>>(
        &mut self,
        event: Event,
        sender_topic: TopicId,
        ctx: &mut X,
    ) {
        // Interest check: events only ever travel *up* the hierarchy, so a
        // correct run never trips this. Baselines do; daMulticast must not.
        if !self.is_interested_in(event.topic()) {
            self.parasite_count += 1;
            ctx.bump("da.parasite");
            return;
        }
        let fresh = self.seen.insert(event.id());
        if !fresh && !self.mutation.skips_dedup() {
            ctx.bump(&self.labels.duplicate);
            return;
        }
        if sender_topic != self.topic {
            // The event crossed a group boundary to reach us.
            ctx.bump(&self.labels.inter_in);
        }
        ctx.bump(&self.labels.delivered);
        self.delivered.push(event.clone());
        self.disseminate(&event, ctx);
    }

    /// Floods a bootstrap request through the overlay neighbourhood.
    fn flood_request<X: Exec<Msg = DaMsg>>(
        &mut self,
        req_id: u64,
        topics: Vec<TopicId>,
        ctx: &mut X,
    ) {
        let Some(overlay) = self.overlay.clone() else {
            return;
        };
        self.answered_requests.insert((self.me, req_id));
        for &n in overlay.neighbors(self.me) {
            self.send_control(
                ctx,
                n,
                DaMsg::ReqContact {
                    origin: self.me,
                    req_id,
                    topics: topics.clone(),
                    ttl: self.params.request_ttl,
                },
            );
        }
    }

    /// Handles a bootstrap search request (Fig. 4, lines 4–13).
    fn handle_req_contact<X: Exec<Msg = DaMsg>>(
        &mut self,
        origin: ProcessId,
        req_id: u64,
        topics: Vec<TopicId>,
        ttl: u8,
        ctx: &mut X,
    ) {
        // "Done only the first time the message is received."
        if !self.answered_requests.insert((origin, req_id)) {
            return;
        }
        if origin == self.me {
            return;
        }
        // If we are interested in one of the requested topics, answer with
        // ourselves plus a sample of our group view (Ψ).
        if topics.contains(&self.topic) {
            let mut contacts = self.membership.view().sample(self.params.z, ctx.rng());
            contacts.push(self.me);
            contacts.retain(|&p| p != origin);
            self.send_control(
                ctx,
                origin,
                DaMsg::AnsContact {
                    topic: self.topic,
                    contacts,
                },
            );
            return;
        }
        // Otherwise keep flooding while the request lives.
        if ttl > 0 {
            if let Some(overlay) = self.overlay.clone() {
                for &n in overlay.neighbors(self.me) {
                    if n == origin {
                        continue;
                    }
                    self.send_control(
                        ctx,
                        n,
                        DaMsg::ReqContact {
                            origin,
                            req_id,
                            topics: topics.clone(),
                            ttl: ttl - 1,
                        },
                    );
                }
            }
        }
    }

    /// Handles a bootstrap answer (Fig. 4, lines 30–37): merge the contacts
    /// and narrow or stop the search.
    fn handle_ans_contact<X: Exec<Msg = DaMsg>>(
        &mut self,
        topic: TopicId,
        contacts: &[ProcessId],
        ctx: &mut X,
    ) {
        // Only contacts of strictly including topics belong in the
        // supertable.
        if !self.hierarchy.includes(topic, self.topic) {
            return;
        }
        let entries: Vec<SuperEntry> = contacts
            .iter()
            .map(|&pid| SuperEntry { pid, topic })
            .collect();
        let hierarchy = Arc::clone(&self.hierarchy);
        if self.stable.len() < self.stable.capacity() {
            for &entry in &entries {
                self.stable.insert(entry, ctx.rng());
            }
        }
        self.stable.tighten(&entries, |t| hierarchy.depth(t));
        if let Some(task) = self.bootstrap.as_mut() {
            // A direct-supertopic answer stops the task; answers from
            // higher ancestors narrow the search (Fig. 4, lines 31-35).
            task.on_answer(topic, &hierarchy);
        }
    }

    /// Wraps and routes pending membership messages, piggybacking a sample
    /// of the supertable (Sec. V-A.2a).
    fn route_membership<X: Exec<Msg = DaMsg>>(
        &mut self,
        out: Vec<(ProcessId, da_membership::MembershipMsg)>,
        ctx: &mut X,
    ) {
        for (to, inner) in out {
            let stable_sample = self.stable.sample(2, ctx.rng());
            self.send_control(
                ctx,
                to,
                DaMsg::Membership {
                    inner,
                    stable_sample,
                },
            );
        }
    }
}

impl ExecProtocol for DaProcess {
    type Msg = DaMsg;

    fn on_start<X: Exec<Msg = DaMsg>>(&mut self, ctx: &mut X) {
        // Dynamic mode: join the group and start the super-contact search.
        let contacts = std::mem::take(&mut self.join_contacts);
        if !contacts.is_empty() {
            let joins = self.membership.join(&contacts, ctx.rng());
            self.route_membership(joins, ctx);
        }
        if let Some(task) = self.bootstrap.as_mut() {
            if self.stable.is_empty() {
                if let BootstrapAction::SendRequest { req_id, topics } = task.start(ctx.round()) {
                    self.flood_request(req_id, topics, ctx);
                }
            } else {
                task.stop();
            }
        }
    }

    fn on_message<X: Exec<Msg = DaMsg>>(&mut self, from: ProcessId, msg: DaMsg, ctx: &mut X) {
        let round = ctx.round();
        match msg {
            DaMsg::Event {
                event,
                sender_topic,
            } => {
                self.membership.mark_heard(from, round);
                self.receive_event(event, sender_topic, ctx);
            }
            DaMsg::ReqContact {
                origin,
                req_id,
                topics,
                ttl,
            } => self.handle_req_contact(origin, req_id, topics, ttl, ctx),
            DaMsg::AnsContact { topic, contacts } => {
                self.handle_ans_contact(topic, &contacts, ctx);
            }
            DaMsg::NewProcessReq => {
                // Fig. 6, lines 2–5: answer with available superprocesses —
                // members of *our* group, which is a supergroup of the
                // requester's.
                let mut sample = self.membership.view().sample(self.params.z, ctx.rng());
                sample.push(self.me);
                let contacts = sample
                    .into_iter()
                    .map(|pid| SuperEntry {
                        pid,
                        topic: self.topic,
                    })
                    .collect();
                self.send_control(ctx, from, DaMsg::NewProcessAns { contacts });
            }
            DaMsg::NewProcessAns { contacts } => {
                // Fig. 6, lines 6–9: MERGE fresh superprocesses.
                let hierarchy = Arc::clone(&self.hierarchy);
                let my_topic = self.topic;
                let valid: Vec<SuperEntry> = contacts
                    .into_iter()
                    .filter(|e| hierarchy.includes(e.topic, my_topic))
                    .collect();
                self.stable.merge(&valid, |_| true);
                self.stable.tighten(&valid, |t| hierarchy.depth(t));
            }
            DaMsg::Ping { nonce } => {
                self.send_control(ctx, from, DaMsg::Pong { nonce });
            }
            DaMsg::Pong { .. } => {
                if let Some(m) = self.maintenance.as_mut() {
                    m.on_pong(from, round);
                }
            }
            DaMsg::Membership {
                inner,
                stable_sample,
            } => {
                let replies = self.membership.on_message(from, &inner, round, ctx.rng());
                self.route_membership(replies, ctx);
                // Piggybacked supertable entries: valid for us when their
                // topic strictly includes ours (sender is a group-mate, so
                // its ancestors are ours).
                let hierarchy = Arc::clone(&self.hierarchy);
                let my_topic = self.topic;
                let valid: Vec<SuperEntry> = stable_sample
                    .into_iter()
                    .filter(|e| hierarchy.includes(e.topic, my_topic))
                    .collect();
                if !valid.is_empty() {
                    self.stable.merge(&valid, |_| true);
                    self.stable.tighten(&valid, |t| hierarchy.depth(t));
                    if let Some(task) = self.bootstrap.as_mut() {
                        if task.is_active() && valid.iter().any(|e| e.topic == task.direct_super())
                        {
                            task.stop();
                        }
                    }
                }
            }
        }
    }

    fn on_round<X: Exec<Msg = DaMsg>>(&mut self, round: u64, ctx: &mut X) {
        // Publications queued since the last round (Fig. 5 SUBSCRIBE +
        // Fig. 7 DISSEMINATE, run by the publisher).
        let publishes = std::mem::take(&mut self.pending_publish);
        for event in publishes {
            if self.seen.insert(event.id()) {
                ctx.bump(&self.labels.delivered);
                self.delivered.push(event.clone());
            }
            self.disseminate(&event, ctx);
        }

        // Static mode stops here: no control plane.
        if self.overlay.is_none() && self.maintenance.is_none() {
            return;
        }

        // Underlying membership gossip.
        let digests = self.membership.on_round(round, ctx.rng());
        self.route_membership(digests, ctx);

        // KEEP_TABLE_UPDATED (Fig. 6).
        let action = if let Some(m) = self.maintenance.as_mut() {
            let entries: Vec<ProcessId> = self.stable.entries().iter().map(|e| e.pid).collect();
            let p_sel = self.params.p_sel(self.group_size);
            let selected = p_sel >= 1.0 || (p_sel > 0.0 && ctx.rng().gen_bool(p_sel));
            m.on_round(round, &entries, selected, self.params.tau)
        } else {
            MaintenanceAction::Idle
        };
        match action {
            MaintenanceAction::Ping { nonce, targets } => {
                for t in targets {
                    self.send_control(ctx, t, DaMsg::Ping { nonce });
                }
            }
            MaintenanceAction::Refresh { alive, dead } => {
                for d in dead {
                    self.stable.remove(d);
                }
                for a in alive {
                    self.send_control(ctx, a, DaMsg::NewProcessReq);
                }
            }
            MaintenanceAction::RestartBootstrap => {
                if let Some(task) = self.bootstrap.as_mut() {
                    if let BootstrapAction::SendRequest { req_id, topics } = task.start(round) {
                        self.flood_request(req_id, topics, ctx);
                    }
                }
            }
            MaintenanceAction::Idle => {}
        }

        // FIND_SUPER_CONTACT timeout handling (Fig. 4, lines 14–28).
        if let Some(task) = self.bootstrap.as_mut() {
            if task.is_active() {
                let hierarchy = Arc::clone(&self.hierarchy);
                if let BootstrapAction::SendRequest { req_id, topics } =
                    task.on_round(round, &hierarchy)
                {
                    self.flood_request(req_id, topics, ctx);
                }
            }
        }
    }

    fn on_recover<X: Exec<Msg = DaMsg>>(&mut self, ctx: &mut X) {
        // Re-entry after a crash (dynamic mode): whatever the tables held
        // before the crash may point at processes that moved on, so
        // restart FIND_SUPER_CONTACT immediately rather than waiting for
        // the maintenance task to notice dead links. Static mode keeps
        // its fixed tables — a recovered static member just resumes.
        if let Some(task) = self.bootstrap.as_mut() {
            if let BootstrapAction::SendRequest { req_id, topics } = task.start(ctx.round()) {
                self.flood_request(req_id, topics, ctx);
            }
        }
    }
}

/// Simulator adapter: the whole protocol lives in the substrate-generic
/// [`ExecProtocol`] impl above; running under `da_simnet::Engine` is pure
/// delegation through the `Ctx` execution context.
impl Protocol for DaProcess {
    type Msg = DaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, DaMsg>) {
        ExecProtocol::on_start(self, ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: DaMsg, ctx: &mut Ctx<'_, DaMsg>) {
        ExecProtocol::on_message(self, from, msg, ctx);
    }

    fn on_round(&mut self, round: u64, ctx: &mut Ctx<'_, DaMsg>) {
        ExecProtocol::on_round(self, round, ctx);
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, DaMsg>) {
        ExecProtocol::on_recover(self, ctx);
    }
}

/// XOR-fold of per-element hashes: order-independent, so iteration
/// order of a `HashSet` cannot leak into the digest.
fn fold_unordered<I: IntoIterator<Item = u64>>(items: I) -> u64 {
    let mut acc = 0u64;
    for word in items {
        let mut h = FxHasher::default();
        h.write_u64(word);
        acc ^= h.finish();
    }
    acc
}

fn event_id_word(id: EventId) -> u64 {
    (u64::from(id.publisher.0) << 32) ^ id.sequence.rotate_left(17)
}

/// Canonical protocol-state digest for the bounded model checker.
///
/// Ordered containers (views, tables, delivery logs) are hashed in
/// order; sets are XOR-folded so `HashSet` iteration order cannot make
/// equal states look distinct. The bootstrap/maintenance/overlay tasks
/// contribute presence flags only: the checker targets static-mode
/// processes (the paper's simulation setting), where all three are
/// absent and the flags are constant. Dynamic-mode exploration would
/// under-distinguish timer state — acceptable for a *bounded* checker
/// (it can only merge states, never invent transitions), but worth
/// knowing when reading state counts.
impl McHash for DaProcess {
    fn mc_hash(&self, state: &mut dyn Hasher) {
        state.write_u32(self.me.0);
        state.write_u64(self.topic.index() as u64);
        let view = self.membership.view().as_slice();
        state.write_u64(view.len() as u64);
        for p in view {
            state.write_u32(p.0);
        }
        state.write_u64(self.stable.entries().len() as u64);
        for e in self.stable.entries() {
            state.write_u32(e.pid.0);
            state.write_u64(e.topic.index() as u64);
        }
        state.write_u64(self.group_size as u64);
        state.write_u8(u8::from(self.bootstrap.is_some()));
        state.write_u8(u8::from(self.maintenance.is_some()));
        state.write_u8(u8::from(self.overlay.is_some()));
        state.write_u64(self.join_contacts.len() as u64);
        for p in &self.join_contacts {
            state.write_u32(p.0);
        }
        state.write_u64(fold_unordered(
            self.seen.iter().map(|&id| event_id_word(id)),
        ));
        state.write_u64(self.delivered.len() as u64);
        for e in &self.delivered {
            state.write_u64(event_id_word(e.id()));
        }
        state.write_u64(self.parasite_count);
        state.write_u64(self.pending_publish.len() as u64);
        for e in &self.pending_publish {
            state.write_u64(event_id_word(e.id()));
        }
        state.write_u64(self.next_sequence);
        state.write_u64(fold_unordered(self.answered_requests.iter().map(
            |&(origin, req_id)| (u64::from(origin.0) << 32) ^ req_id.rotate_left(7),
        )));
    }
}

use rand::Rng as _;

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::{Engine, SimConfig};

    fn chain_hierarchy() -> (Arc<TopicHierarchy>, Vec<TopicId>) {
        let (h, ids) = TopicHierarchy::linear_chain(3);
        (Arc::new(h), ids)
    }

    /// A tiny static two-level network: 4 root members (pids 0–3), 6 leaf
    /// members (pids 4–9) fully meshed, each leaf knowing 2 roots.
    fn tiny_static_network() -> (Vec<DaProcess>, Vec<TopicId>) {
        let (h, ids) = chain_hierarchy();
        let params = TopicParams::paper_default();
        let root_members: Vec<ProcessId> = (0..4).map(ProcessId).collect();
        let mid_members: Vec<ProcessId> = (4..10).map(ProcessId).collect();
        let mut procs = Vec::new();
        for &m in &root_members {
            let table: Vec<ProcessId> = root_members.iter().copied().filter(|&p| p != m).collect();
            procs.push(DaProcess::static_member(
                m,
                ids[0],
                Arc::clone(&h),
                params,
                root_members.len(),
                table,
                vec![],
            ));
        }
        for &m in &mid_members {
            let table: Vec<ProcessId> = mid_members.iter().copied().filter(|&p| p != m).collect();
            let supers = vec![
                SuperEntry {
                    pid: root_members[0],
                    topic: ids[0],
                },
                SuperEntry {
                    pid: root_members[1],
                    topic: ids[0],
                },
            ];
            procs.push(DaProcess::static_member(
                m,
                ids[1],
                Arc::clone(&h),
                params,
                mid_members.len(),
                table,
                supers,
            ));
        }
        (procs, ids)
    }

    #[test]
    fn static_event_reaches_whole_group_and_supergroup() {
        let (procs, _ids) = tiny_static_network();
        let mut engine = Engine::new(SimConfig::default().with_seed(7), procs);
        let id = engine.process_mut(ProcessId(5)).publish("hello");
        engine.run_until_quiescent(50);
        // Every leaf member must have delivered (reliable channels).
        for pid in 4..10 {
            assert!(
                engine.process(ProcessId(pid)).has_delivered(id),
                "leaf {pid} missed the event"
            );
        }
        // The event must have climbed into the root group and spread there.
        for pid in 0..4 {
            assert!(
                engine.process(ProcessId(pid)).has_delivered(id),
                "root {pid} missed the event"
            );
        }
    }

    #[test]
    fn no_parasites_and_no_double_delivery() {
        let (procs, _) = tiny_static_network();
        let mut engine = Engine::new(SimConfig::default().with_seed(3), procs);
        engine.process_mut(ProcessId(4)).publish("e1");
        engine.process_mut(ProcessId(9)).publish("e2");
        engine.run_until_quiescent(50);
        for (pid, p) in engine.processes() {
            assert_eq!(p.parasite_count(), 0, "{pid} saw a parasite");
            let mut ids: Vec<EventId> = p.delivered().iter().map(|e| e.id()).collect();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), p.delivered().len(), "{pid} double-delivered");
        }
    }

    #[test]
    fn events_do_not_flow_downwards() {
        let (procs, _) = tiny_static_network();
        let mut engine = Engine::new(SimConfig::default().with_seed(5), procs);
        // Publish at the ROOT group: leaves subscribe to the mid topic and
        // must NOT receive a root-topic event.
        let id = engine.process_mut(ProcessId(0)).publish("root news");
        engine.run_until_quiescent(50);
        for pid in 0..4 {
            assert!(engine.process(ProcessId(pid)).has_delivered(id));
        }
        for pid in 4..10 {
            assert!(
                !engine.process(ProcessId(pid)).has_delivered(id),
                "leaf {pid} received a strict-supertopic event"
            );
            assert_eq!(engine.process(ProcessId(pid)).parasite_count(), 0);
        }
    }

    #[test]
    fn intra_and_inter_counters_track_messages() {
        let (procs, ids) = tiny_static_network();
        let (h, _) = chain_hierarchy();
        let mid_path = h.path(ids[1]).as_str().to_owned();
        let root_path = h.path(ids[0]).as_str().to_owned();
        let mut engine = Engine::new(SimConfig::default().with_seed(11), procs);
        engine.process_mut(ProcessId(4)).publish("x");
        engine.run_until_quiescent(50);
        let c = engine.counters();
        assert!(c.get(&format!("da.intra.{mid_path}")) > 0, "mid gossip");
        assert!(c.get(&format!("da.intra.{root_path}")) > 0, "root gossip");
        assert!(
            c.get(&format!("da.inter_out.{mid_path}")) > 0,
            "mid forwarded to root"
        );
        assert!(
            c.get(&format!("da.inter_in.{root_path}")) > 0,
            "root received from mid"
        );
        assert_eq!(c.get("da.parasite"), 0);
    }

    #[test]
    fn publisher_delivers_its_own_event_once() {
        let (procs, _) = tiny_static_network();
        let mut engine = Engine::new(SimConfig::default().with_seed(13), procs);
        let id = engine.process_mut(ProcessId(4)).publish("mine");
        engine.run_until_quiescent(50);
        let publisher = engine.process(ProcessId(4));
        assert_eq!(
            publisher
                .delivered()
                .iter()
                .filter(|e| e.id() == id)
                .count(),
            1
        );
    }

    #[test]
    fn sequence_numbers_increment() {
        let (mut procs, _) = tiny_static_network();
        let a = procs[4].publish("a");
        let b = procs[4].publish("b");
        assert_eq!(a.sequence + 1, b.sequence);
        assert_eq!(a.publisher, b.publisher);
    }

    #[test]
    fn memory_entries_bounded_by_paper_formula() {
        let (procs, _) = tiny_static_network();
        for p in &procs {
            // ln(S)+c view (capped) plus z supertable entries.
            let view_cap = da_membership::kmg_view_size(p.params().b, 6);
            assert!(p.memory_entries() <= view_cap.max(5) + p.params().z);
        }
    }

    #[test]
    fn root_member_never_elects_super_forwarding() {
        let (procs, _) = tiny_static_network();
        let mut engine = Engine::new(SimConfig::default().with_seed(17), procs);
        engine.process_mut(ProcessId(0)).publish("top");
        engine.run_until_quiescent(50);
        // Root processes have empty supertables: inter_out for the root
        // path must be zero.
        let c = engine.counters();
        assert_eq!(c.get("da.inter_out."), c.get("da.inter_out."));
        assert_eq!(c.sum_prefix("da.inter_out."), 0);
    }
}

#[cfg(test)]
mod take_delivered_tests {
    use super::*;
    use da_simnet::{Engine, SimConfig};

    #[test]
    fn take_delivered_drains_without_redelivery() {
        let (h, ids) = TopicHierarchy::linear_chain(2);
        let h = Arc::new(h);
        let members: Vec<ProcessId> = (0..4).map(ProcessId).collect();
        let procs: Vec<DaProcess> = members
            .iter()
            .map(|&m| {
                let table = members.iter().copied().filter(|&p| p != m).collect();
                DaProcess::static_member(
                    m,
                    ids[1],
                    Arc::clone(&h),
                    crate::TopicParams::paper_default(),
                    4,
                    table,
                    vec![],
                )
            })
            .collect();
        let mut engine = Engine::new(SimConfig::default().with_seed(1), procs);
        let id = engine.process_mut(ProcessId(0)).publish("drain me");
        engine.run_until_quiescent(32);

        let drained = engine.process_mut(ProcessId(1)).take_delivered();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].id(), id);
        assert!(engine.process(ProcessId(1)).delivered().is_empty());

        // Re-gossip of the same event must not re-deliver after draining.
        engine.run_rounds(5);
        assert!(engine.process(ProcessId(1)).delivered().is_empty());
    }
}
