//! The metropolis soak protocol: a deliberately tiny gossip state
//! machine for exercising the substrates at populations the full
//! daMulticast stack was never sized for (the `live_metropolis`
//! example runs it at a million live processes).
//!
//! Every process sits on an arithmetic overlay — a ring link to
//! `pid + 1` and a skip link to `pid + ⌈√n⌉`, both mod `n` — so
//! neighbor sets are *computed*, never stored: per-process state is a
//! couple of machine words (a seen-bitmask and two counters), which is
//! what makes the million-process footprint a measurement of the
//! substrate (slab storage, lazy RNG slots, watermark grid, delay
//! wheel) rather than of protocol tables. A handful of publishers
//! flood headlines over the lattice with a hop budget; duplicate
//! suppression is one bit per headline.
//!
//! Like every protocol in this crate it is written once against
//! [`Exec`](crate::Exec) and runs unchanged on the simulator and the
//! live runtime — the `sim_metropolis` / `live_metropolis` bench rows
//! drive the identical workload through both substrates.

use crate::exec::{Exec, ExecProtocol};
use da_simnet::mc::McHash;
use da_simnet::{Ctx, ProcessId, Protocol, WireSize};
use std::hash::Hasher;

/// Headline ids are bits in a [`MetroProcess`]'s 64-bit seen mask.
pub const MAX_HEADLINES: usize = 64;

/// A gossiped headline: which story, and how many hops it may still
/// travel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetroMsg {
    /// Story id, `< MAX_HEADLINES`.
    pub headline: u8,
    /// Remaining forwarding budget.
    pub hops: u8,
}

impl WireSize for MetroMsg {
    fn wire_size(&self) -> usize {
        2
    }
}

/// One metropolis process: two computed overlay links, one bitmask of
/// delivered headlines, two counters. `size_of::<MetroProcess>()` is
/// what the million-process soak multiplies by.
#[derive(Debug, Clone)]
pub struct MetroProcess {
    population: u32,
    skip: u32,
    ttl: u8,
    /// Headline this process publishes at start (publishers only).
    publishes: Option<u8>,
    seen_mask: u64,
    delivered: u32,
    forwarded: u32,
}

impl MetroProcess {
    /// A non-publishing citizen of a metropolis of `population`
    /// processes, forwarding with hop budget `ttl`.
    #[must_use]
    pub fn new(population: usize, ttl: u8) -> Self {
        let population = u32::try_from(population).expect("metropolis fits ProcessId space");
        MetroProcess {
            population,
            skip: (f64::from(population).sqrt().ceil() as u32).max(1),
            ttl,
            publishes: None,
            seen_mask: 0,
            delivered: 0,
            forwarded: 0,
        }
    }

    /// Marks this process as the publisher of `headline` (`<
    /// MAX_HEADLINES`), announced once at start.
    #[must_use]
    pub fn publishing(mut self, headline: u8) -> Self {
        assert!(
            (headline as usize) < MAX_HEADLINES,
            "headline id {headline} out of range"
        );
        self.publishes = Some(headline);
        self
    }

    /// True when `headline` was delivered (or published) here.
    #[must_use]
    pub fn has_seen(&self, headline: u8) -> bool {
        self.seen_mask & (1u64 << headline) != 0
    }

    /// Number of distinct headlines delivered here.
    #[must_use]
    pub fn headlines_seen(&self) -> u32 {
        self.seen_mask.count_ones()
    }

    /// First-time deliveries at this process.
    #[must_use]
    pub fn delivered(&self) -> u32 {
        self.delivered
    }

    /// Messages this process forwarded onward.
    #[must_use]
    pub fn forwarded(&self) -> u32 {
        self.forwarded
    }

    /// The two overlay neighbors of `me`: ring successor and √n skip.
    fn neighbors(&self, me: ProcessId) -> [ProcessId; 2] {
        let n = u64::from(self.population);
        let at = u64::from(me.0);
        [
            ProcessId(((at + 1) % n) as u32),
            ProcessId(((at + u64::from(self.skip)) % n) as u32),
        ]
    }

    fn forward<X: Exec<Msg = MetroMsg>>(&mut self, msg: MetroMsg, ctx: &mut X) {
        if msg.hops == 0 {
            return;
        }
        let onward = MetroMsg {
            headline: msg.headline,
            hops: msg.hops - 1,
        };
        for to in self.neighbors(ctx.me()) {
            if to != ctx.me() {
                ctx.send(to, onward);
                self.forwarded += 1;
            }
        }
    }
}

impl ExecProtocol for MetroProcess {
    type Msg = MetroMsg;

    fn on_start<X: Exec<Msg = MetroMsg>>(&mut self, ctx: &mut X) {
        if let Some(headline) = self.publishes {
            self.seen_mask |= 1u64 << headline;
            self.forward(
                MetroMsg {
                    headline,
                    hops: self.ttl,
                },
                ctx,
            );
        }
    }

    fn on_message<X: Exec<Msg = MetroMsg>>(
        &mut self,
        _from: ProcessId,
        msg: MetroMsg,
        ctx: &mut X,
    ) {
        let bit = 1u64 << msg.headline;
        if self.seen_mask & bit != 0 {
            ctx.bump("metro.duplicate");
            return;
        }
        self.seen_mask |= bit;
        self.delivered += 1;
        ctx.bump("metro.first_delivery");
        self.forward(msg, ctx);
    }
}

/// Simulator adapter: pure delegation, as for the other protocols.
impl Protocol for MetroProcess {
    type Msg = MetroMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, MetroMsg>) {
        ExecProtocol::on_start(self, ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: MetroMsg, ctx: &mut Ctx<'_, MetroMsg>) {
        ExecProtocol::on_message(self, from, msg, ctx);
    }

    fn on_round(&mut self, round: u64, ctx: &mut Ctx<'_, MetroMsg>) {
        ExecProtocol::on_round(self, round, ctx);
    }
}

impl McHash for MetroProcess {
    fn mc_hash(&self, state: &mut dyn Hasher) {
        state.write_u64(self.seen_mask);
        state.write_u32(self.delivered);
        state.write_u32(self.forwarded);
    }
}

impl McHash for MetroMsg {
    fn mc_hash(&self, state: &mut dyn Hasher) {
        state.write_u8(self.headline);
        state.write_u8(self.hops);
    }
}

/// The standard metropolis population: `n` processes, `headlines`
/// publishers spread evenly around the ring, each flooding with hop
/// budget `ttl`. Shared by the `live_metropolis` example and the
/// `sim_metropolis` / `live_metropolis` bench rows so they measure the
/// same workload.
#[must_use]
pub fn metro_population(n: usize, headlines: usize, ttl: u8) -> Vec<MetroProcess> {
    assert!(
        headlines > 0 && headlines <= MAX_HEADLINES,
        "1..=64 headlines"
    );
    assert!(n >= headlines, "need at least one process per headline");
    let stride = n / headlines;
    (0..n)
        .map(|i| {
            let p = MetroProcess::new(n, ttl);
            if i % stride == 0 && i / stride < headlines {
                p.publishing((i / stride) as u8)
            } else {
                p
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::{Engine, SimConfig};

    #[test]
    fn metro_state_is_a_few_words() {
        // The million-process example multiplies this by 10⁶ — keep the
        // struct within four machine words.
        assert!(
            std::mem::size_of::<MetroProcess>() <= 32,
            "MetroProcess grew to {} bytes",
            std::mem::size_of::<MetroProcess>()
        );
    }

    #[test]
    fn headlines_flood_the_lattice_and_dedup() {
        let procs = metro_population(1000, 4, 10);
        let mut engine = Engine::new(SimConfig::default().with_seed(3), procs);
        engine.run_until_quiescent(64);
        let reached = engine
            .processes()
            .filter(|(_, p)| p.headlines_seen() > 0)
            .count();
        // Hop budget 10 over {+1, +√n} reaches the publishers'
        // neighborhoods, well beyond the publishers themselves.
        assert!(reached > 100, "only {reached} processes reached");
        let first = engine.counters().get("metro.first_delivery");
        let dup = engine.counters().get("metro.duplicate");
        assert!(first > 0 && dup > 0, "flood must overlap ({first}, {dup})");
        // Conservation on the reliable channel: every send is a first
        // delivery or a suppressed duplicate.
        assert_eq!(engine.counters().get("sim.sent"), first + dup);
        // One bit per story: nobody delivers a headline twice (the
        // publisher's own story is seen but not delivered).
        for (_, p) in engine.processes() {
            let published = u32::from(p.publishes.is_some());
            assert_eq!(p.delivered(), p.headlines_seen() - published);
        }
    }

    #[test]
    fn publishers_sit_on_an_even_stride() {
        let procs = metro_population(100, 4, 2);
        let publishers: Vec<usize> = procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.publishes.is_some())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(publishers, vec![0, 25, 50, 75]);
    }
}
