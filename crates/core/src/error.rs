use std::error::Error;
use std::fmt;

/// Errors surfaced by the daMulticast protocol layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DaError {
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A topic id did not belong to the protocol's hierarchy.
    UnknownTopic {
        /// Raw id of the foreign topic.
        id: u32,
    },
    /// A group needed at least one member.
    EmptyGroup {
        /// Dotted path of the empty group's topic.
        topic: String,
    },
}

impl fmt::Display for DaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaError::InvalidParameter { reason } => {
                write!(f, "invalid daMulticast parameter: {reason}")
            }
            DaError::UnknownTopic { id } => {
                write!(
                    f,
                    "topic id {id} does not belong to the protocol's hierarchy"
                )
            }
            DaError::EmptyGroup { topic } => {
                write!(f, "group for topic '{topic}' has no members")
            }
        }
    }
}

impl Error for DaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = DaError::InvalidParameter {
            reason: "z must be positive".into(),
        };
        assert!(e.to_string().contains("z must be positive"));
        assert!(DaError::UnknownTopic { id: 3 }.to_string().contains('3'));
        assert!(DaError::EmptyGroup { topic: ".a".into() }
            .to_string()
            .contains(".a"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DaError>();
    }
}
