//! Protocol parameters.
//!
//! The paper exposes, per topic `Ti`, the knobs that trade reliability for
//! message complexity (Sec. V-B): the membership constant `b`, the gossip
//! constant `c` (inside the fanout rule), the link-election weight `g`
//! (`p_sel = g / S`), the supertable spray weight `a` (`p_a = a / z`), the
//! supertable size `z`, and the maintenance threshold `τ`.

use crate::DaError;
use da_membership::FanoutRule;
use da_topics::TopicId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-topic daMulticast parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopicParams {
    /// Membership view constant `b` — topic tables hold `(b+1)·ln(S)` ids.
    pub b: f64,
    /// Intra-group gossip fanout rule (`ln(S)+c` family).
    pub fanout: FanoutRule,
    /// Link-election weight `g`: a process elects itself to forward an
    /// event to its supergroup with probability `p_sel = g / S`.
    pub g: f64,
    /// Supertable spray weight `a`: each supertable entry is sent the event
    /// with probability `p_a = a / z`.
    pub a: f64,
    /// Supertopic table size `z`.
    pub z: usize,
    /// Maintenance threshold `τ`: when at most `τ` supertable entries are
    /// alive, fresh superprocesses are requested (Fig. 6, line 18).
    pub tau: usize,
    /// Rounds between maintenance passes (`KEEP_TABLE_UPDATED` cadence).
    pub maintenance_period: u64,
    /// Rounds a liveness ping may take before the peer counts as failed.
    pub ping_timeout: u64,
    /// Rounds before an unanswered bootstrap request widens its scope.
    pub bootstrap_timeout: u64,
    /// Hop budget of bootstrap search requests through the overlay.
    pub request_ttl: u8,
}

impl TopicParams {
    /// The paper's simulation parameters (Sec. VII-A): `b = 3`, `c = 5`
    /// (log10 fanout, matching the plotted magnitudes), `g = 5`, `a = 1`,
    /// `z = 3`.
    #[must_use]
    pub fn paper_default() -> Self {
        TopicParams {
            b: 3.0,
            fanout: FanoutRule::Log10PlusC { c: 5.0 },
            g: 5.0,
            a: 1.0,
            z: 3,
            tau: 1,
            maintenance_period: 10,
            ping_timeout: 4,
            bootstrap_timeout: 6,
            request_ttl: 8,
        }
    }

    /// `p_sel = g / S`, clamped into `[0, 1]` (Sec. V-B).
    #[must_use]
    pub fn p_sel(&self, group_size: usize) -> f64 {
        if group_size == 0 {
            return 0.0;
        }
        (self.g / group_size as f64).clamp(0.0, 1.0)
    }

    /// `p_a = a / z`, clamped into `[0, 1]` (Sec. V-B).
    #[must_use]
    pub fn p_a(&self) -> f64 {
        if self.z == 0 {
            return 0.0;
        }
        (self.a / self.z as f64).clamp(0.0, 1.0)
    }

    /// Validates the parameter ranges required by the paper
    /// (`1 ≤ g`, `1 ≤ a ≤ z`, `0 ≤ τ ≤ z`, `z ≥ 1`).
    ///
    /// # Errors
    ///
    /// Returns [`DaError::InvalidParameter`] describing the violation.
    pub fn validate(&self) -> Result<(), DaError> {
        if self.z == 0 {
            return Err(DaError::InvalidParameter {
                reason: "z (supertable size) must be at least 1".to_owned(),
            });
        }
        if self.g < 1.0 {
            return Err(DaError::InvalidParameter {
                reason: format!("g must be at least 1 (got {})", self.g),
            });
        }
        if self.a < 1.0 || self.a > self.z as f64 {
            return Err(DaError::InvalidParameter {
                reason: format!("a must satisfy 1 ≤ a ≤ z (got a={}, z={})", self.a, self.z),
            });
        }
        if self.tau > self.z {
            return Err(DaError::InvalidParameter {
                reason: format!(
                    "τ must satisfy 0 ≤ τ ≤ z (got τ={}, z={})",
                    self.tau, self.z
                ),
            });
        }
        if self.b < 0.0 {
            return Err(DaError::InvalidParameter {
                reason: format!("b must be non-negative (got {})", self.b),
            });
        }
        Ok(())
    }

    /// Replaces the fanout rule.
    #[must_use]
    pub fn with_fanout(mut self, fanout: FanoutRule) -> Self {
        self.fanout = fanout;
        self
    }

    /// Replaces `g`.
    #[must_use]
    pub fn with_g(mut self, g: f64) -> Self {
        self.g = g;
        self
    }

    /// Replaces `a`.
    #[must_use]
    pub fn with_a(mut self, a: f64) -> Self {
        self.a = a;
        self
    }

    /// Replaces `z`.
    #[must_use]
    pub fn with_z(mut self, z: usize) -> Self {
        self.z = z;
        self
    }
}

impl Default for TopicParams {
    fn default() -> Self {
        TopicParams::paper_default()
    }
}

/// Parameter assignment across a topic hierarchy: a default plus per-topic
/// overrides.
///
/// ```
/// use damulticast::{ParamMap, TopicParams};
/// use da_topics::TopicId;
///
/// let mut params = ParamMap::uniform(TopicParams::paper_default());
/// let custom = TopicParams::paper_default().with_z(5);
/// params.set(TopicId::ROOT, custom);
/// assert_eq!(params.for_topic(TopicId::ROOT).z, 5);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamMap {
    default: TopicParams,
    overrides: HashMap<TopicId, TopicParams>,
}

impl ParamMap {
    /// Uses `default` for every topic.
    #[must_use]
    pub fn uniform(default: TopicParams) -> Self {
        ParamMap {
            default,
            overrides: HashMap::new(),
        }
    }

    /// Overrides the parameters of one topic.
    pub fn set(&mut self, topic: TopicId, params: TopicParams) {
        self.overrides.insert(topic, params);
    }

    /// The parameters of `topic` (override or default).
    #[must_use]
    pub fn for_topic(&self, topic: TopicId) -> TopicParams {
        self.overrides.get(&topic).copied().unwrap_or(self.default)
    }

    /// The default parameters.
    #[must_use]
    pub fn default_params(&self) -> TopicParams {
        self.default
    }

    /// Validates every parameter set in the map.
    ///
    /// # Errors
    ///
    /// Returns the first [`DaError::InvalidParameter`] found.
    pub fn validate(&self) -> Result<(), DaError> {
        self.default.validate()?;
        for params in self.overrides.values() {
            params.validate()?;
        }
        Ok(())
    }
}

impl Default for ParamMap {
    fn default() -> Self {
        ParamMap::uniform(TopicParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_vii() {
        let p = TopicParams::paper_default();
        assert!((p.b - 3.0).abs() < f64::EPSILON);
        assert!((p.g - 5.0).abs() < f64::EPSILON);
        assert!((p.a - 1.0).abs() < f64::EPSILON);
        assert_eq!(p.z, 3);
        assert_eq!(p.fanout, FanoutRule::Log10PlusC { c: 5.0 });
        assert!(p.validate().is_ok());
    }

    #[test]
    fn probability_p_sel() {
        let p = TopicParams::paper_default();
        assert!((p.p_sel(1000) - 0.005).abs() < 1e-12);
        assert!((p.p_sel(100) - 0.05).abs() < 1e-12);
        // Tiny groups: clamped to 1.
        assert!((p.p_sel(3) - 1.0).abs() < 1e-12);
        assert!(p.p_sel(0).abs() < 1e-12);
    }

    #[test]
    fn probability_p_a() {
        let p = TopicParams::paper_default();
        assert!((p.p_a() - 1.0 / 3.0).abs() < 1e-12);
        let p = p.with_a(3.0);
        assert!((p.p_a() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_ranges() {
        assert!(TopicParams::paper_default().with_z(0).validate().is_err());
        assert!(TopicParams::paper_default().with_g(0.5).validate().is_err());
        assert!(TopicParams::paper_default().with_a(0.0).validate().is_err());
        assert!(TopicParams::paper_default()
            .with_a(10.0)
            .validate()
            .is_err());
        let mut p = TopicParams::paper_default();
        p.tau = 99;
        assert!(p.validate().is_err());
        p.tau = 3;
        assert!(p.validate().is_ok(), "τ = z is allowed");
    }

    #[test]
    fn param_map_overrides() {
        let mut m = ParamMap::uniform(TopicParams::paper_default());
        let t1 = TopicId::from_index(1);
        m.set(t1, TopicParams::paper_default().with_z(7));
        assert_eq!(m.for_topic(t1).z, 7);
        assert_eq!(m.for_topic(TopicId::ROOT).z, 3);
        assert!(m.validate().is_ok());
        m.set(t1, TopicParams::paper_default().with_z(0));
        assert!(m.validate().is_err());
    }
}
