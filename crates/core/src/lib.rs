//! # damulticast — Data-Aware Multicast
//!
//! A Rust reproduction of **"Data-Aware Multicast"** (S. Baehni,
//! P. Th. Eugster, R. Guerraoui — EPFL, DSN 2004): a completely
//! decentralized multicast algorithm for topic-based publish/subscribe
//! where topics form a hierarchy. The algorithm is *data-aware*: it uses
//! the inclusion relations between topics to group processes by interest,
//! gossip events inside each group, and forward events bottom-up from a
//! topic's group to its supertopic's group.
//!
//! The properties the paper claims — and this crate tests — are:
//!
//! 1. per-process memory of `ln(S_Ti) + c_Ti + z_Ti` table entries,
//!    independent of the number of super-/subtopics;
//! 2. an application-tunable trade-off between inter-group reliability
//!    and message cost via the `g`, `a`, `z` parameters;
//! 3. message complexity `O(S_Tmax · ln S_Tmax)`;
//! 4. **zero parasite messages** — a process only ever receives events of
//!    topics it is interested in;
//! 5. no central server or broker.
//!
//! ## Quick start
//!
//! Build the paper's 3-level topology (`S_T0 = 10`, `S_T1 = 100`,
//! `S_T2 = 1000`), publish in the leaf group, and watch the event climb:
//!
//! ```
//! use damulticast::{ParamMap, StaticNetwork};
//! use da_simnet::{Engine, SimConfig, ProcessId};
//!
//! # fn main() -> Result<(), damulticast::DaError> {
//! let net = StaticNetwork::linear(&[10, 100, 1000], ParamMap::default(), 42)?;
//! let leaf = net.groups()[2].members[0];
//! let mut engine = Engine::new(SimConfig::default().with_seed(42), net.into_processes());
//! let id = engine.process_mut(leaf).publish("goal!");
//! engine.run_until_quiescent(64);
//!
//! // All 1000 leaf subscribers deliver; no process delivers twice; no
//! // process receives an event it did not subscribe to.
//! let delivered = engine
//!     .processes()
//!     .filter(|(_, p)| p.has_delivered(id))
//!     .count();
//! assert!(delivered > 1000);
//! assert_eq!(engine.counters().get("da.parasite"), 0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Module map
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Fig. 4 `FIND_SUPER_CONTACT` | [`BootstrapTask`] |
//! | Fig. 5 subscribe/receive | [`DaProcess`] (`on_message`) |
//! | Fig. 6 `KEEP_TABLE_UPDATED` | [`MaintenanceTask`] |
//! | Fig. 7 `DISSEMINATE` | [`plan_dissemination`] |
//! | Topic/supertopic tables (Sec. V-A.1) | [`SuperTable`] + `da_membership` |
//! | Per-topic knobs `b,c,g,a,z,τ` (Sec. V-B) | [`TopicParams`] |
//! | Sec. VIII multiple inheritance | [`MultiSuperTables`] |
//!
//! ## Substrates
//!
//! The protocol is written once against the [`Exec`] execution-context
//! trait ([`ExecProtocol`]) and runs unchanged on two substrates: the
//! deterministic round simulator (`da-simnet`, used for the paper's
//! figures) and the multi-threaded live runtime (`da-runtime`, used to
//! serve real traffic). The `da_simnet::Protocol` impls here are one-line
//! delegations into the substrate-generic logic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bootstrap;
mod dag_protocol;
mod dissemination;
mod error;
mod event;
mod exec;
mod maintenance;
mod message;
mod metro;
mod multi_super;
mod network;
mod params;
mod protocol;
mod tables;

pub use bootstrap::{BootstrapAction, BootstrapTask};
pub use dag_protocol::{DagNetwork, DagProcess};
pub use dissemination::{plan_dissemination, DisseminationPlan};
pub use error::DaError;
pub use event::{Event, EventId};
pub use exec::{Exec, ExecProtocol};
pub use maintenance::{MaintenanceAction, MaintenanceTask};
pub use message::DaMsg;
pub use metro::{metro_population, MetroMsg, MetroProcess, MAX_HEADLINES};
pub use multi_super::{plan_multi_dissemination, MultiSuperTables};
pub use network::{DynamicNetwork, GroupSpec, StaticNetwork};
pub use params::{ParamMap, TopicParams};
pub use protocol::{DaProcess, Mutation};
pub use tables::{SuperEntry, SuperTable};
