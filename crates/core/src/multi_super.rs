//! Multiple-supertopic extension (the paper's concluding remarks).
//!
//! The body of the paper assumes every topic has exactly one direct
//! supertopic; Sec. VIII notes that "multiple supertopics (i.e., multiple
//! inheritance) could be easily supported by ... adding a supertopic table
//! for each supertopic". This module implements that extension over the
//! [`da_topics::dag::TopicDag`] substrate: a [`MultiSuperTables`] keeps one
//! constant-size [`SuperTable`] per direct supertopic, and
//! [`plan_multi_dissemination`] runs the Fig. 7 election/spray logic
//! independently per table, so an event climbs *every* inclusion edge.

use crate::dissemination::DisseminationPlan;
use crate::params::TopicParams;
use crate::tables::{SuperEntry, SuperTable};
use da_simnet::ProcessId;
use da_topics::dag::TopicDag;
use da_topics::TopicId;
use rand::Rng;
use std::collections::BTreeMap;

/// One supertopic table per direct supertopic of the owner's topic.
///
/// ```
/// use damulticast::{MultiSuperTables, SuperEntry};
/// use da_simnet::{rng_from_seed, ProcessId};
/// use da_topics::dag::TopicDag;
///
/// # fn main() -> Result<(), da_topics::TopicError> {
/// let mut dag = TopicDag::new();
/// let sport = dag.add_topic("sport", &[dag.root()])?;
/// let swiss = dag.add_topic("swiss", &[dag.root()])?;
/// let ski = dag.add_topic("ski", &[sport, swiss])?; // two supertopics
///
/// let mut tables = MultiSuperTables::new(ProcessId(0), ski, &dag, 3);
/// assert_eq!(tables.supertopics().count(), 2);
/// let mut rng = rng_from_seed(1);
/// tables.insert(SuperEntry { pid: ProcessId(7), topic: sport }, &mut rng);
/// assert_eq!(tables.table(sport).unwrap().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultiSuperTables {
    owner: ProcessId,
    tables: BTreeMap<TopicId, SuperTable>,
}

impl MultiSuperTables {
    /// Creates one empty table of capacity `z` per direct supertopic of
    /// `topic` in `dag`. Root-like topics (no parents) get no tables.
    #[must_use]
    pub fn new(owner: ProcessId, topic: TopicId, dag: &TopicDag, z: usize) -> Self {
        let tables = dag
            .parents(topic)
            .iter()
            .map(|&parent| (parent, SuperTable::new(owner, z)))
            .collect();
        MultiSuperTables { owner, tables }
    }

    /// The owning process.
    #[must_use]
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// Iterates over the supertopics that have a table.
    pub fn supertopics(&self) -> impl Iterator<Item = TopicId> + '_ {
        self.tables.keys().copied()
    }

    /// The table for one supertopic, if it exists.
    #[must_use]
    pub fn table(&self, supertopic: TopicId) -> Option<&SuperTable> {
        self.tables.get(&supertopic)
    }

    /// Inserts an entry into the table of its own topic. Entries for
    /// topics that are not direct supertopics are rejected.
    /// Returns whether the entry was inserted.
    pub fn insert<R: Rng>(&mut self, entry: SuperEntry, rng: &mut R) -> bool {
        match self.tables.get_mut(&entry.topic) {
            Some(table) => table.insert(entry, rng),
            None => false,
        }
    }

    /// Total number of entries across all tables — the extension's memory
    /// footprint (`k · z` for `k` supertopics, still independent of the
    /// hierarchy's total size).
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.tables.values().map(SuperTable::len).sum()
    }

    /// True when every table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tables.values().all(SuperTable::is_empty)
    }

    /// Supertopics whose tables are still empty (bootstrap targets).
    #[must_use]
    pub fn unlinked(&self) -> Vec<TopicId> {
        self.tables
            .iter()
            .filter(|(_, t)| t.is_empty())
            .map(|(&topic, _)| topic)
            .collect()
    }
}

/// Runs the Fig. 7 inter-group election independently per supertopic table
/// and the intra-group gossip once, returning a single merged plan.
///
/// Each edge of the inclusion DAG gets its own `p_sel` draw, so the
/// per-edge expected message count matches the single-inheritance analysis
/// (`S·p_sel·p_a·z` per supertopic).
pub fn plan_multi_dissemination<R: Rng>(
    params: &TopicParams,
    group_size: usize,
    topic_table: &[ProcessId],
    tables: &MultiSuperTables,
    rng: &mut R,
) -> DisseminationPlan {
    let mut merged = DisseminationPlan {
        elected: false,
        super_targets: Vec::new(),
        gossip_targets: Vec::new(),
    };
    let p_sel = params.p_sel(group_size);
    let p_a = params.p_a();
    for table in tables.tables.values() {
        if table.is_empty() || p_sel <= 0.0 {
            continue;
        }
        if p_sel >= 1.0 || rng.gen_bool(p_sel) {
            merged.elected = true;
            for &entry in table.entries() {
                if p_a >= 1.0 || (p_a > 0.0 && rng.gen_bool(p_a)) {
                    merged.super_targets.push(entry);
                }
            }
        }
    }
    // Intra-group gossip is independent of the number of supertopics.
    let fanout = params.fanout.fanout(group_size);
    let mut pool = topic_table.to_vec();
    use rand::seq::SliceRandom;
    pool.shuffle(rng);
    pool.truncate(fanout);
    merged.gossip_targets = pool;
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::rng_from_seed;

    fn diamond() -> (TopicDag, TopicId, TopicId, TopicId) {
        // root ← sport, root ← swiss, {sport, swiss} ← ski
        let mut dag = TopicDag::new();
        let sport = dag.add_topic("sport", &[dag.root()]).unwrap();
        let swiss = dag.add_topic("swiss", &[dag.root()]).unwrap();
        let ski = dag.add_topic("ski", &[sport, swiss]).unwrap();
        (dag, sport, swiss, ski)
    }

    #[test]
    fn one_table_per_supertopic() {
        let (dag, sport, swiss, ski) = diamond();
        let t = MultiSuperTables::new(ProcessId(0), ski, &dag, 3);
        let supers: Vec<TopicId> = t.supertopics().collect();
        assert_eq!(supers.len(), 2);
        assert!(supers.contains(&sport));
        assert!(supers.contains(&swiss));
        assert!(t.is_empty());
        assert_eq!(t.unlinked().len(), 2);
    }

    #[test]
    fn root_topic_has_no_tables() {
        let (dag, ..) = diamond();
        let t = MultiSuperTables::new(ProcessId(0), dag.root(), &dag, 3);
        assert_eq!(t.supertopics().count(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn entries_are_routed_to_their_topic_table() {
        let (dag, sport, swiss, ski) = diamond();
        let mut t = MultiSuperTables::new(ProcessId(0), ski, &dag, 2);
        let mut rng = rng_from_seed(1);
        assert!(t.insert(
            SuperEntry {
                pid: ProcessId(1),
                topic: sport
            },
            &mut rng
        ));
        assert!(t.insert(
            SuperEntry {
                pid: ProcessId(2),
                topic: swiss
            },
            &mut rng
        ));
        // The DAG root is not a *direct* supertopic of ski.
        assert!(!t.insert(
            SuperEntry {
                pid: ProcessId(3),
                topic: dag.root()
            },
            &mut rng
        ));
        assert_eq!(t.table(sport).unwrap().len(), 1);
        assert_eq!(t.table(swiss).unwrap().len(), 1);
        assert_eq!(t.total_entries(), 2);
        assert_eq!(t.unlinked().len(), 0);
    }

    #[test]
    fn memory_is_tables_times_z_not_hierarchy_size() {
        let mut dag = TopicDag::new();
        let mut parents = Vec::new();
        for i in 0..10 {
            parents.push(dag.add_topic(&format!("p{i}"), &[dag.root()]).unwrap());
        }
        let child = dag.add_topic("child", &parents).unwrap();
        let mut t = MultiSuperTables::new(ProcessId(0), child, &dag, 3);
        let mut rng = rng_from_seed(2);
        let mut next = 1u32;
        for &p in &parents {
            for _ in 0..5 {
                t.insert(
                    SuperEntry {
                        pid: ProcessId(next),
                        topic: p,
                    },
                    &mut rng,
                );
                next += 1;
            }
        }
        // 10 tables × capacity 3, despite 5 offered per parent.
        assert_eq!(t.total_entries(), 30);
    }

    #[test]
    fn plan_covers_every_edge_when_forced() {
        let (dag, sport, swiss, ski) = diamond();
        let mut t = MultiSuperTables::new(ProcessId(0), ski, &dag, 1);
        let mut rng = rng_from_seed(3);
        t.insert(
            SuperEntry {
                pid: ProcessId(10),
                topic: sport,
            },
            &mut rng,
        );
        t.insert(
            SuperEntry {
                pid: ProcessId(20),
                topic: swiss,
            },
            &mut rng,
        );
        // g ≥ S and a = z force p_sel = p_a = 1.
        let params = TopicParams::paper_default()
            .with_g(100.0)
            .with_a(1.0)
            .with_z(1);
        let plan = plan_multi_dissemination(&params, 2, &[ProcessId(1)], &t, &mut rng);
        assert!(plan.elected);
        let topics: Vec<TopicId> = plan.super_targets.iter().map(|e| e.topic).collect();
        assert!(topics.contains(&sport));
        assert!(topics.contains(&swiss));
        assert_eq!(plan.gossip_targets.len(), 1);
    }

    #[test]
    fn per_edge_election_rate_matches_p_sel() {
        let (dag, sport, _swiss, ski) = diamond();
        let mut t = MultiSuperTables::new(ProcessId(0), ski, &dag, 1);
        let mut rng = rng_from_seed(4);
        t.insert(
            SuperEntry {
                pid: ProcessId(10),
                topic: sport,
            },
            &mut rng,
        );
        // S = 100, g = 5 → p_sel = 0.05 per edge; only the sport edge is
        // linked so the overall hit rate equals the per-edge rate.
        let params = TopicParams::paper_default().with_z(1).with_a(1.0);
        let trials = 20_000;
        let hits = (0..trials)
            .filter(|_| {
                !plan_multi_dissemination(&params, 100, &[], &t, &mut rng)
                    .super_targets
                    .is_empty()
            })
            .count();
        let rate = hits as f64 / trials as f64;
        // Per-edge probability = p_sel · p_a = 0.05 · 1.0.
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }
}
