//! The bootstrap task (`FIND_SUPER_CONTACT`, Fig. 4 of the paper).
//!
//! A process interested in `Ti` must populate its supertopic table with
//! contacts interested in `super(Ti)`. When no contact is provided out of
//! band, it searches the weakly-consistent overlay: it floods an
//! initialization message naming `super(Ti)`; if nothing answers within a
//! timeout, the scope widens to `super(super(Ti))`, and so on up to the
//! root (lines 19–27). When an answer arrives from a process interested in
//! `Tx`:
//!
//! * if `Tx == super(Ti)` the task stops (lines 31–32);
//! * otherwise the search narrows — topics that include `Tx` are removed
//!   from the request (line 34) — and continues until a direct
//!   superprocess is found.

use da_topics::{TopicHierarchy, TopicId};
use serde::{Deserialize, Serialize};

/// What the embedding protocol should do for the bootstrap task this round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BootstrapAction {
    /// Flood a `REQCONTACT` with these topics and this request id.
    SendRequest {
        /// De-duplication id for the new attempt.
        req_id: u64,
        /// Topics of interest, nearest ancestor first.
        topics: Vec<TopicId>,
    },
    /// Nothing to do this round.
    Idle,
}

/// State machine of `FIND_SUPER_CONTACT`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BootstrapTask {
    my_topic: TopicId,
    direct_super: TopicId,
    /// Topics currently searched for, nearest first (`initMsg`).
    wanted: Vec<TopicId>,
    /// Round at which the current attempt was issued.
    attempt_round: u64,
    /// Rounds before the scope widens.
    timeout: u64,
    /// Monotonic attempt counter, also used to mint request ids.
    attempts: u64,
    active: bool,
}

impl BootstrapTask {
    /// Creates the task for a process interested in `topic`. Returns
    /// `None` for the root topic (no supergroup exists).
    #[must_use]
    pub fn new(topic: TopicId, hierarchy: &TopicHierarchy, timeout: u64) -> Option<Self> {
        let direct_super = hierarchy.parent(topic)?;
        Some(BootstrapTask {
            my_topic: topic,
            direct_super,
            wanted: vec![direct_super],
            attempt_round: 0,
            timeout: timeout.max(1),
            attempts: 0,
            active: false,
        })
    }

    /// True while the search is running.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The topic whose process runs this task.
    #[must_use]
    pub fn topic(&self) -> TopicId {
        self.my_topic
    }

    /// The direct supertopic this task ultimately looks for.
    #[must_use]
    pub fn direct_super(&self) -> TopicId {
        self.direct_super
    }

    /// The topics currently requested, nearest ancestor first.
    #[must_use]
    pub fn wanted(&self) -> &[TopicId] {
        &self.wanted
    }

    /// Starts (or restarts) the search at `round`. Resets the scope to the
    /// direct supertopic.
    pub fn start(&mut self, round: u64) -> BootstrapAction {
        self.active = true;
        self.wanted = vec![self.direct_super];
        self.attempt_round = round;
        self.attempts += 1;
        BootstrapAction::SendRequest {
            req_id: self.attempts,
            topics: self.wanted.clone(),
        }
    }

    /// Round hook: widens the scope and re-floods when the current attempt
    /// timed out (paper lines 19–27).
    pub fn on_round(&mut self, round: u64, hierarchy: &TopicHierarchy) -> BootstrapAction {
        if !self.active || round.saturating_sub(self.attempt_round) < self.timeout {
            return BootstrapAction::Idle;
        }
        // Widen: append the supertopic of the last requested topic, unless
        // the root is already requested.
        if let Some(&last) = self.wanted.last() {
            if let Some(parent) = hierarchy.parent(last) {
                self.wanted.push(parent);
            }
        }
        self.attempt_round = round;
        self.attempts += 1;
        BootstrapAction::SendRequest {
            req_id: self.attempts,
            topics: self.wanted.clone(),
        }
    }

    /// An `ANSCONTACT` arrived from a process interested in `answered`.
    /// Returns true when the task is finished (a direct superprocess was
    /// found). Otherwise the search narrows to topics below `answered`
    /// (paper line 34).
    pub fn on_answer(&mut self, answered: TopicId, hierarchy: &TopicHierarchy) -> bool {
        if !self.active {
            return true;
        }
        if answered == self.direct_super {
            self.active = false;
            return true;
        }
        // Narrow (paper line 34): drop every requested topic that includes
        // the answered one — those are further away than what we just
        // found. The answered topic itself is also dropped; the direct
        // supertopic always stays wanted.
        self.wanted
            .retain(|&t| !hierarchy.includes_or_eq(t, answered) || t == self.direct_super);
        if self.wanted.is_empty() {
            self.wanted = vec![self.direct_super];
        }
        false
    }

    /// Stops the task unconditionally (e.g. a contact arrived out of band).
    pub fn stop(&mut self) {
        self.active = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> (TopicHierarchy, Vec<TopicId>) {
        TopicHierarchy::linear_chain(4) // T0 (root) ← T1 ← T2 ← T3
    }

    #[test]
    fn root_topic_has_no_task() {
        let (h, ids) = chain();
        assert!(BootstrapTask::new(ids[0], &h, 5).is_none());
        assert!(BootstrapTask::new(ids[1], &h, 5).is_some());
    }

    #[test]
    fn start_requests_direct_super() {
        let (h, ids) = chain();
        let mut task = BootstrapTask::new(ids[3], &h, 5).unwrap();
        assert_eq!(task.topic(), ids[3]);
        assert_eq!(task.direct_super(), ids[2]);
        match task.start(0) {
            BootstrapAction::SendRequest { topics, .. } => {
                assert_eq!(topics, vec![ids[2]]);
            }
            BootstrapAction::Idle => panic!("start must request"),
        }
        assert!(task.is_active());
    }

    #[test]
    fn timeout_widens_scope_up_to_root() {
        let (h, ids) = chain();
        let mut task = BootstrapTask::new(ids[3], &h, 2).unwrap();
        task.start(0);
        assert_eq!(task.on_round(1, &h), BootstrapAction::Idle, "not yet");
        match task.on_round(2, &h) {
            BootstrapAction::SendRequest { topics, .. } => {
                assert_eq!(topics, vec![ids[2], ids[1]]);
            }
            BootstrapAction::Idle => panic!("timeout must widen"),
        }
        match task.on_round(4, &h) {
            BootstrapAction::SendRequest { topics, .. } => {
                assert_eq!(topics, vec![ids[2], ids[1], ids[0]]);
            }
            BootstrapAction::Idle => panic!("second widening expected"),
        }
        // Already at root: scope stays, but the request re-floods.
        match task.on_round(6, &h) {
            BootstrapAction::SendRequest { topics, .. } => {
                assert_eq!(topics.len(), 3);
            }
            BootstrapAction::Idle => panic!("re-flood expected"),
        }
    }

    #[test]
    fn direct_answer_finishes() {
        let (h, ids) = chain();
        let mut task = BootstrapTask::new(ids[3], &h, 2).unwrap();
        task.start(0);
        assert!(task.on_answer(ids[2], &h));
        assert!(!task.is_active());
    }

    #[test]
    fn ancestor_answer_narrows_but_continues() {
        let (h, ids) = chain();
        let mut task = BootstrapTask::new(ids[3], &h, 1).unwrap();
        task.start(0);
        // Widen twice: wanted = [T2, T1, T0].
        task.on_round(1, &h);
        task.on_round(2, &h);
        assert_eq!(task.wanted().len(), 3);
        // An answer from T1 narrows: T0 includes T1 → dropped; T1 itself →
        // dropped (we already have that level); T2 stays.
        assert!(!task.on_answer(ids[1], &h));
        assert!(task.is_active());
        assert_eq!(task.wanted(), &[ids[2]]);
    }

    #[test]
    fn request_ids_are_unique_per_attempt() {
        let (h, ids) = chain();
        let mut task = BootstrapTask::new(ids[2], &h, 1).unwrap();
        let a = match task.start(0) {
            BootstrapAction::SendRequest { req_id, .. } => req_id,
            BootstrapAction::Idle => unreachable!(),
        };
        let b = match task.on_round(1, &h) {
            BootstrapAction::SendRequest { req_id, .. } => req_id,
            BootstrapAction::Idle => unreachable!(),
        };
        assert_ne!(a, b);
    }

    #[test]
    fn stop_halts_round_activity() {
        let (h, ids) = chain();
        let mut task = BootstrapTask::new(ids[2], &h, 1).unwrap();
        task.start(0);
        task.stop();
        assert_eq!(task.on_round(10, &h), BootstrapAction::Idle);
    }
}
