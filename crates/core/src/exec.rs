//! The execution-context abstraction: protocol logic written once, run
//! on any substrate.
//!
//! The paper's evaluation runs daMulticast under a synchronous round
//! simulator; a production deployment runs it on real threads with real
//! message passing. Both substrates offer the same five capabilities to
//! the protocol — identity, virtual time, best-effort send, a
//! deterministic per-process RNG, and labelled metrics — captured here as
//! the [`Exec`] trait. Protocol state machines implement [`ExecProtocol`]
//! against it and are thereby portable:
//!
//! * `da_simnet::Ctx` implements [`Exec`] (below), so every
//!   [`ExecProtocol`] runs under the deterministic simulator — the
//!   `da_simnet::Protocol` impls of [`crate::DaProcess`] and
//!   [`crate::DagProcess`] are one-line delegations;
//! * `da-runtime`'s live context implements [`Exec`] over an in-memory
//!   threaded transport, so the *same* tables, bootstrap, maintenance,
//!   and dissemination code serves live traffic.
//!
//! The trait is deliberately minimal: anything substrate-specific
//! (channel loss models, failure plans, thread placement) stays out of
//! the protocol's sight, exactly as the paper's Sec. III system model
//! prescribes (processes see only send/receive over unreliable channels).

use da_simnet::ProcessId;
use rand::rngs::SmallRng;

/// One process' view of its execution substrate during a protocol
/// callback.
///
/// `round` is virtual time: gossip rounds under the simulator, scheduler
/// ticks under the live runtime. Messages sent here are best-effort — the
/// substrate may drop, delay, or reorder them, and the protocol must not
/// assume otherwise.
pub trait Exec {
    /// The message type travelling between processes.
    type Msg;

    /// The process this callback runs at.
    fn me(&self) -> ProcessId;

    /// Current virtual time (simulator round / runtime tick).
    fn round(&self) -> u64;

    /// Queues a best-effort message to `to`.
    fn send(&mut self, to: ProcessId, msg: Self::Msg);

    /// The deterministic RNG stream of this process.
    fn rng(&mut self) -> &mut SmallRng;

    /// Increments the metrics counter `label` by one.
    fn bump(&mut self, label: &str);

    /// Adds `delta` to the metrics counter `label`.
    fn add(&mut self, label: &str, delta: u64);
}

impl<M> Exec for da_simnet::Ctx<'_, M> {
    type Msg = M;

    fn me(&self) -> ProcessId {
        da_simnet::Ctx::me(self)
    }

    fn round(&self) -> u64 {
        da_simnet::Ctx::round(self)
    }

    fn send(&mut self, to: ProcessId, msg: M) {
        da_simnet::Ctx::send(self, to, msg);
    }

    fn rng(&mut self) -> &mut SmallRng {
        da_simnet::Ctx::rng(self)
    }

    fn bump(&mut self, label: &str) {
        self.counters().bump(label);
    }

    fn add(&mut self, label: &str, delta: u64) {
        self.counters().add_named(label, delta);
    }
}

/// A substrate-portable protocol state machine.
///
/// The hook contract matches `da_simnet::Protocol`: `on_start` once
/// before virtual time 0, `on_message` per delivered message, `on_round`
/// once per round/tick — but every hook is generic over the execution
/// context, so one implementation serves both the simulator and the live
/// runtime.
pub trait ExecProtocol {
    /// The protocol's message type.
    type Msg;

    /// Called once before round/tick 0. Default: no-op.
    fn on_start<X: Exec<Msg = Self::Msg>>(&mut self, ctx: &mut X) {
        let _ = ctx;
    }

    /// Called when a message addressed to this process is delivered.
    fn on_message<X: Exec<Msg = Self::Msg>>(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut X,
    );

    /// Called once per round/tick, after the round's deliveries. Default:
    /// no-op.
    fn on_round<X: Exec<Msg = Self::Msg>>(&mut self, round: u64, ctx: &mut X) {
        let _ = (round, ctx);
    }

    /// Called when the substrate's failure plan recovers this process
    /// (it was crashed and comes back), at the start of the recovery
    /// round/tick and before any delivery. The protocol's re-entry
    /// path: [`crate::DaProcess`] restarts its super-contact bootstrap
    /// here, since its tables may have gone stale while it was down.
    /// Default: no-op.
    fn on_recover<X: Exec<Msg = Self::Msg>>(&mut self, ctx: &mut X) {
        let _ = ctx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::{Engine, SimConfig, WireSize};

    /// A protocol written purely against [`ExecProtocol`], checked here
    /// under the simulator adapter.
    struct Echo {
        heard: Vec<(ProcessId, u8)>,
    }

    #[derive(Clone, Debug)]
    struct Byte(u8);
    impl WireSize for Byte {
        fn wire_size(&self) -> usize {
            1
        }
    }

    impl ExecProtocol for Echo {
        type Msg = Byte;

        fn on_start<X: Exec<Msg = Byte>>(&mut self, ctx: &mut X) {
            if ctx.me() == ProcessId(0) {
                ctx.send(ProcessId(1), Byte(7));
                ctx.bump("echo.pings");
            }
        }

        fn on_message<X: Exec<Msg = Byte>>(&mut self, from: ProcessId, msg: Byte, ctx: &mut X) {
            self.heard.push((from, msg.0));
            if msg.0 > 0 {
                ctx.send(from, Byte(msg.0 - 1));
            }
            ctx.add("echo.bytes", 1);
        }
    }

    /// The simulator-side adapter is a pure delegation, like the ones the
    /// real protocols use.
    impl da_simnet::Protocol for Echo {
        type Msg = Byte;
        fn on_start(&mut self, ctx: &mut da_simnet::Ctx<'_, Byte>) {
            ExecProtocol::on_start(self, ctx);
        }
        fn on_message(&mut self, from: ProcessId, msg: Byte, ctx: &mut da_simnet::Ctx<'_, Byte>) {
            ExecProtocol::on_message(self, from, msg, ctx);
        }
        fn on_round(&mut self, round: u64, ctx: &mut da_simnet::Ctx<'_, Byte>) {
            ExecProtocol::on_round(self, round, ctx);
        }
    }

    #[test]
    fn exec_protocol_runs_under_the_simulator() {
        let procs = vec![Echo { heard: vec![] }, Echo { heard: vec![] }];
        let mut engine = Engine::new(SimConfig::default().with_seed(1), procs);
        engine.run_until_quiescent(32);
        // The byte ping-pongs 7 → 0: eight deliveries in total.
        assert_eq!(engine.counters().get("echo.bytes"), 8);
        assert_eq!(engine.counters().get("echo.pings"), 1);
        assert_eq!(engine.process(ProcessId(1)).heard.len(), 4);
        assert_eq!(engine.process(ProcessId(0)).heard.len(), 4);
    }

    #[test]
    fn ctx_exec_exposes_identity_time_and_rng() {
        struct Probe {
            ok: bool,
        }
        #[derive(Clone, Debug)]
        struct Nothing;
        impl WireSize for Nothing {
            fn wire_size(&self) -> usize {
                0
            }
        }
        impl ExecProtocol for Probe {
            type Msg = Nothing;
            fn on_message<X: Exec<Msg = Nothing>>(
                &mut self,
                _f: ProcessId,
                _m: Nothing,
                _c: &mut X,
            ) {
            }
            fn on_round<X: Exec<Msg = Nothing>>(&mut self, round: u64, ctx: &mut X) {
                use rand::Rng as _;
                let _draw: u64 = ctx.rng().gen();
                self.ok = ctx.round() == round && ctx.me() == ProcessId(0);
            }
        }
        impl da_simnet::Protocol for Probe {
            type Msg = Nothing;
            fn on_message(
                &mut self,
                f: ProcessId,
                m: Nothing,
                c: &mut da_simnet::Ctx<'_, Nothing>,
            ) {
                ExecProtocol::on_message(self, f, m, c);
            }
            fn on_round(&mut self, round: u64, ctx: &mut da_simnet::Ctx<'_, Nothing>) {
                ExecProtocol::on_round(self, round, ctx);
            }
        }
        let mut engine = Engine::new(SimConfig::default(), vec![Probe { ok: false }]);
        engine.run_rounds(3);
        assert!(engine.process(ProcessId(0)).ok);
    }
}
