use bytes::Bytes;
use da_simnet::{ProcessId, WireSize};
use da_topics::TopicId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique identifier of a published event: publisher id plus a
/// per-publisher sequence number.
///
/// Processes de-duplicate on this id ("Done only the first time the
/// message is received", Fig. 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId {
    /// The publishing process.
    pub publisher: ProcessId,
    /// Sequence number local to the publisher.
    pub sequence: u64,
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.publisher, self.sequence)
    }
}

impl WireSize for EventId {
    fn wire_size(&self) -> usize {
        4 + 8
    }
}

/// A published event (`e_Ti` in the paper): identity, topic, payload.
///
/// ```
/// use damulticast::Event;
/// use da_simnet::ProcessId;
/// use da_topics::TopicId;
///
/// let e = Event::new(ProcessId(3), 0, TopicId::ROOT, "breaking news");
/// assert_eq!(e.id().publisher, ProcessId(3));
/// assert_eq!(e.payload(), b"breaking news");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    id: EventId,
    topic: TopicId,
    payload: Bytes,
}

impl Event {
    /// Creates an event published by `publisher` with local `sequence`
    /// number, of `topic`, carrying `payload`.
    pub fn new(
        publisher: ProcessId,
        sequence: u64,
        topic: TopicId,
        payload: impl Into<Bytes>,
    ) -> Self {
        Event {
            id: EventId {
                publisher,
                sequence,
            },
            topic,
            payload: payload.into(),
        }
    }

    /// The event's unique id.
    #[must_use]
    pub fn id(&self) -> EventId {
        self.id
    }

    /// The topic the event was published on.
    #[must_use]
    pub fn topic(&self) -> TopicId {
        self.topic
    }

    /// The opaque payload bytes.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }
}

impl WireSize for Event {
    fn wire_size(&self) -> usize {
        self.id.wire_size() + 4 /* topic */ + 4 /* len */ + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_accessors() {
        let e = Event::new(ProcessId(1), 7, TopicId::ROOT, vec![1u8, 2, 3]);
        assert_eq!(
            e.id(),
            EventId {
                publisher: ProcessId(1),
                sequence: 7
            }
        );
        assert_eq!(e.topic(), TopicId::ROOT);
        assert_eq!(e.payload(), &[1, 2, 3]);
    }

    #[test]
    fn id_display() {
        let id = EventId {
            publisher: ProcessId(4),
            sequence: 2,
        };
        assert_eq!(id.to_string(), "p4#2");
    }

    #[test]
    fn wire_size_includes_payload() {
        let empty = Event::new(ProcessId(0), 0, TopicId::ROOT, Bytes::new());
        let full = Event::new(ProcessId(0), 0, TopicId::ROOT, vec![0u8; 100]);
        assert_eq!(full.wire_size() - empty.wire_size(), 100);
    }

    #[test]
    fn ids_order_by_publisher_then_sequence() {
        let a = EventId {
            publisher: ProcessId(0),
            sequence: 9,
        };
        let b = EventId {
            publisher: ProcessId(1),
            sequence: 0,
        };
        assert!(a < b);
    }
}
