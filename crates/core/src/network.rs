//! Network assembly: build a whole population of [`DaProcess`]es from a
//! topic hierarchy and group membership lists.
//!
//! Two builders mirror the protocol's two modes:
//!
//! * [`StaticNetwork`] — the paper's simulation setting (Sec. VII-A):
//!   every table is drawn once, uniformly at random, before round 0, and
//!   never changes. Supertables point into the *nearest non-empty ancestor
//!   group* (Sec. V-A.1, footnote 4).
//! * [`DynamicNetwork`] — the full protocol: processes only get a handful
//!   of same-group contacts plus a random overlay, and discover super
//!   contacts through the bootstrap.

use crate::error::DaError;
use crate::params::ParamMap;
use crate::protocol::DaProcess;
use crate::tables::SuperEntry;
use da_membership::static_init::{static_super_tables, static_topic_tables};
use da_membership::MembershipParams;
use da_simnet::{derive_seed, rng_from_seed, Overlay, ProcessId};
use da_topics::{TopicHierarchy, TopicId};
use rand::seq::SliceRandom;
use std::collections::HashMap;
use std::sync::Arc;

/// One topic group: the topic and its interested processes.
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// The group's topic.
    pub topic: TopicId,
    /// The processes interested in the topic (`Π_Ti`).
    pub members: Vec<ProcessId>,
}

/// A fully-specified static population, ready to run under a
/// [`da_simnet::Engine`].
///
/// ```
/// use damulticast::{ParamMap, StaticNetwork, TopicParams};
/// use da_simnet::{Engine, SimConfig, ProcessId};
///
/// // The paper's topology: S_T0 = 10, S_T1 = 100, S_T2 = 1000.
/// let net = StaticNetwork::linear(&[10, 100, 1000], ParamMap::default(), 42)
///     .expect("valid topology");
/// let first_leaf = net.groups()[2].members[0];
/// let mut engine = Engine::new(SimConfig::default().with_seed(42), net.into_processes());
/// engine.process_mut(first_leaf).publish("evt");
/// engine.run_until_quiescent(64);
/// ```
#[derive(Debug)]
pub struct StaticNetwork {
    hierarchy: Arc<TopicHierarchy>,
    groups: Vec<GroupSpec>,
    processes: Vec<DaProcess>,
}

impl StaticNetwork {
    /// Builds a static network over a **linear** topic chain
    /// `T0 ← T1 ← …` where `group_sizes[i] = S_Ti` (the paper's Sec. VI-A
    /// assumption and Sec. VII-A setting). Process ids are dense,
    /// allocated top-down.
    ///
    /// # Errors
    ///
    /// Returns [`DaError::InvalidParameter`] when `group_sizes` is empty,
    /// contains a zero, or `params` fails validation.
    pub fn linear(group_sizes: &[usize], params: ParamMap, seed: u64) -> Result<Self, DaError> {
        if group_sizes.is_empty() {
            return Err(DaError::InvalidParameter {
                reason: "at least one group (the root) is required".to_owned(),
            });
        }
        let (hierarchy, ids) = TopicHierarchy::linear_chain(group_sizes.len());
        let members = da_membership::static_init::assign_group_members(group_sizes);
        let groups = ids
            .into_iter()
            .zip(members)
            .map(|(topic, members)| GroupSpec { topic, members })
            .collect();
        StaticNetwork::from_groups(Arc::new(hierarchy), groups, params, seed)
    }

    /// Builds a static network from explicit groups over an arbitrary
    /// hierarchy. Groups may be empty (their subscribers link past them to
    /// the nearest non-empty ancestor).
    ///
    /// # Errors
    ///
    /// Returns [`DaError::InvalidParameter`] on parameter-validation
    /// failure, and [`DaError::EmptyGroup`] when the total population is
    /// empty.
    pub fn from_groups(
        hierarchy: Arc<TopicHierarchy>,
        groups: Vec<GroupSpec>,
        params: ParamMap,
        seed: u64,
    ) -> Result<Self, DaError> {
        params.validate()?;
        if groups.iter().all(|g| g.members.is_empty()) {
            return Err(DaError::EmptyGroup {
                topic: ".".to_owned(),
            });
        }
        for g in &groups {
            hierarchy
                .check(g.topic)
                .map_err(|_| DaError::UnknownTopic {
                    id: g.topic.index() as u32,
                })?;
        }
        let by_topic: HashMap<TopicId, &GroupSpec> = groups.iter().map(|g| (g.topic, g)).collect();
        let mut rng = rng_from_seed(derive_seed(seed, 0x57A7));
        let mut processes: Vec<(ProcessId, DaProcess)> = Vec::new();

        for group in &groups {
            if group.members.is_empty() {
                continue;
            }
            let tp = params.for_topic(group.topic);
            tp.validate()?;
            let topic_tables =
                static_topic_tables(&group.members, tp.b, &mut rng).map_err(|e| {
                    DaError::InvalidParameter {
                        reason: e.to_string(),
                    }
                })?;

            // The nearest strict ancestor whose group is non-empty.
            let ancestor = hierarchy
                .ancestors(group.topic)
                .find(|a| by_topic.get(a).is_some_and(|g| !g.members.is_empty()));
            let super_tables = match ancestor {
                Some(anc) => {
                    let supergroup = &by_topic[&anc].members;
                    let tables = static_super_tables(&group.members, supergroup, tp.z, &mut rng)
                        .map_err(|e| DaError::InvalidParameter {
                            reason: e.to_string(),
                        })?;
                    Some((anc, tables))
                }
                None => None,
            };

            for &pid in &group.members {
                let table = topic_tables[&pid].clone();
                let supers: Vec<SuperEntry> = match &super_tables {
                    Some((anc, tables)) => tables[&pid]
                        .iter()
                        .map(|&p| SuperEntry {
                            pid: p,
                            topic: *anc,
                        })
                        .collect(),
                    None => Vec::new(),
                };
                processes.push((
                    pid,
                    DaProcess::static_member(
                        pid,
                        group.topic,
                        Arc::clone(&hierarchy),
                        tp,
                        group.members.len(),
                        table,
                        supers,
                    ),
                ));
            }
        }

        // Engine addresses processes by dense index; sort and verify.
        processes.sort_by_key(|(pid, _)| *pid);
        for (i, (pid, _)) in processes.iter().enumerate() {
            if pid.index() != i {
                return Err(DaError::InvalidParameter {
                    reason: format!("process ids must be dense 0..n; found {pid} at position {i}"),
                });
            }
        }
        let processes = processes.into_iter().map(|(_, p)| p).collect();
        Ok(StaticNetwork {
            hierarchy,
            groups,
            processes,
        })
    }

    /// The topic hierarchy backing the network.
    #[must_use]
    pub fn hierarchy(&self) -> &Arc<TopicHierarchy> {
        &self.hierarchy
    }

    /// The group specifications, in construction order.
    #[must_use]
    pub fn groups(&self) -> &[GroupSpec] {
        &self.groups
    }

    /// Total number of processes.
    #[must_use]
    pub fn population(&self) -> usize {
        self.processes.len()
    }

    /// Consumes the network, yielding the processes for
    /// [`da_simnet::Engine::new`].
    #[must_use]
    pub fn into_processes(self) -> Vec<DaProcess> {
        self.processes
    }
}

/// A dynamic population: processes bootstrap their own tables through an
/// overlay and keep them fresh at runtime.
#[derive(Debug)]
pub struct DynamicNetwork {
    hierarchy: Arc<TopicHierarchy>,
    groups: Vec<GroupSpec>,
    overlay: Arc<Overlay>,
    processes: Vec<DaProcess>,
}

impl DynamicNetwork {
    /// Builds a dynamic network over a linear chain, handing each process
    /// `contacts_per_process` random same-group contacts and a shared
    /// random overlay of the given `overlay_degree`.
    ///
    /// # Errors
    ///
    /// Returns [`DaError::InvalidParameter`] for empty/zero topologies or
    /// invalid parameters.
    pub fn linear(
        group_sizes: &[usize],
        params: ParamMap,
        contacts_per_process: usize,
        overlay_degree: usize,
        seed: u64,
    ) -> Result<Self, DaError> {
        if group_sizes.is_empty() || group_sizes.contains(&0) {
            return Err(DaError::InvalidParameter {
                reason: "group sizes must be non-empty and positive".to_owned(),
            });
        }
        params.validate()?;
        let (hierarchy, ids) = TopicHierarchy::linear_chain(group_sizes.len());
        let hierarchy = Arc::new(hierarchy);
        let members = da_membership::static_init::assign_group_members(group_sizes);
        let population: usize = group_sizes.iter().sum();
        let overlay = Arc::new(
            Overlay::random(population, overlay_degree.max(2), derive_seed(seed, 0x07E8)).map_err(
                |e| DaError::InvalidParameter {
                    reason: e.to_string(),
                },
            )?,
        );
        let mut rng = rng_from_seed(derive_seed(seed, 0xD1A7));
        let mut processes = Vec::with_capacity(population);
        let groups: Vec<GroupSpec> = ids
            .iter()
            .zip(&members)
            .map(|(&topic, members)| GroupSpec {
                topic,
                members: members.clone(),
            })
            .collect();
        for group in &groups {
            let tp = params.for_topic(group.topic);
            let mparams = MembershipParams {
                b: tp.b,
                expected_group_size: group.members.len(),
                ..MembershipParams::paper_default(group.members.len())
            };
            for &pid in &group.members {
                let mut pool: Vec<ProcessId> = group
                    .members
                    .iter()
                    .copied()
                    .filter(|&p| p != pid)
                    .collect();
                pool.shuffle(&mut rng);
                pool.truncate(contacts_per_process);
                processes.push(DaProcess::dynamic_member(
                    pid,
                    group.topic,
                    Arc::clone(&hierarchy),
                    tp,
                    mparams,
                    Arc::clone(&overlay),
                    pool,
                ));
            }
        }
        processes.sort_by_key(DaProcess::id);
        Ok(DynamicNetwork {
            hierarchy,
            groups,
            overlay,
            processes,
        })
    }

    /// The topic hierarchy backing the network.
    #[must_use]
    pub fn hierarchy(&self) -> &Arc<TopicHierarchy> {
        &self.hierarchy
    }

    /// The group specifications.
    #[must_use]
    pub fn groups(&self) -> &[GroupSpec] {
        &self.groups
    }

    /// The shared bootstrap overlay.
    #[must_use]
    pub fn overlay(&self) -> &Arc<Overlay> {
        &self.overlay
    }

    /// Consumes the network, yielding the processes for
    /// [`da_simnet::Engine::new`].
    #[must_use]
    pub fn into_processes(self) -> Vec<DaProcess> {
        self.processes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TopicParams;
    use da_simnet::{Engine, SimConfig};

    #[test]
    fn linear_builder_respects_paper_topology() {
        let net = StaticNetwork::linear(&[10, 100, 1000], ParamMap::default(), 1).unwrap();
        assert_eq!(net.population(), 1110);
        assert_eq!(net.groups().len(), 3);
        assert_eq!(net.groups()[0].members.len(), 10);
        assert_eq!(net.groups()[2].members.len(), 1000);
    }

    #[test]
    fn empty_topology_rejected() {
        assert!(StaticNetwork::linear(&[], ParamMap::default(), 1).is_err());
    }

    #[test]
    fn invalid_params_rejected() {
        let params = ParamMap::uniform(TopicParams::paper_default().with_z(0));
        assert!(StaticNetwork::linear(&[5, 5], params, 1).is_err());
    }

    #[test]
    fn tables_point_to_correct_groups() {
        let net = StaticNetwork::linear(&[10, 100], ParamMap::default(), 2).unwrap();
        let groups = net.groups().to_vec();
        let procs = net.into_processes();
        for p in &procs {
            let my_group = groups
                .iter()
                .find(|g| g.topic == p.topic())
                .expect("every process belongs to a group");
            for peer in p.topic_table() {
                assert!(
                    my_group.members.contains(peer),
                    "topic table must stay within the group"
                );
            }
            for e in p.super_table().entries() {
                assert!(
                    groups[0].members.contains(&e.pid),
                    "supertable must point into the ancestor group"
                );
                assert_eq!(e.topic, groups[0].topic);
            }
        }
    }

    #[test]
    fn root_group_has_empty_supertables() {
        let net = StaticNetwork::linear(&[10, 20], ParamMap::default(), 3).unwrap();
        let procs = net.into_processes();
        for p in procs.iter().take(10) {
            assert!(p.super_table().is_empty(), "root member has no supergroup");
        }
    }

    #[test]
    fn empty_intermediate_group_bridged() {
        // T1's group is empty: T2 members must link directly to T0.
        let (h, ids) = TopicHierarchy::linear_chain(3);
        let h = Arc::new(h);
        let groups = vec![
            GroupSpec {
                topic: ids[0],
                members: (0..5).map(ProcessId).collect(),
            },
            GroupSpec {
                topic: ids[1],
                members: vec![],
            },
            GroupSpec {
                topic: ids[2],
                members: (5..15).map(ProcessId).collect(),
            },
        ];
        let net =
            StaticNetwork::from_groups(Arc::clone(&h), groups, ParamMap::default(), 4).unwrap();
        let procs = net.into_processes();
        for p in procs.iter().skip(5) {
            assert!(!p.super_table().is_empty());
            for e in p.super_table().entries() {
                assert_eq!(e.topic, ids[0], "links skip the empty T1 group");
            }
        }
    }

    #[test]
    fn bridged_event_still_reaches_root() {
        let (h, ids) = TopicHierarchy::linear_chain(3);
        let h = Arc::new(h);
        let groups = vec![
            GroupSpec {
                topic: ids[0],
                members: (0..5).map(ProcessId).collect(),
            },
            GroupSpec {
                topic: ids[1],
                members: vec![],
            },
            GroupSpec {
                topic: ids[2],
                members: (5..15).map(ProcessId).collect(),
            },
        ];
        let net = StaticNetwork::from_groups(h, groups, ParamMap::default(), 5).unwrap();
        let mut engine = Engine::new(SimConfig::default().with_seed(5), net.into_processes());
        let id = engine.process_mut(ProcessId(7)).publish("bridge me");
        engine.run_until_quiescent(64);
        for pid in 0..5 {
            assert!(
                engine.process(ProcessId(pid)).has_delivered(id),
                "root member {pid} missed the bridged event"
            );
        }
    }

    #[test]
    fn non_dense_pids_rejected() {
        let (h, ids) = TopicHierarchy::linear_chain(2);
        let groups = vec![
            GroupSpec {
                topic: ids[0],
                members: vec![ProcessId(0), ProcessId(2)], // gap at 1
            },
            GroupSpec {
                topic: ids[1],
                members: vec![ProcessId(5)],
            },
        ];
        assert!(StaticNetwork::from_groups(Arc::new(h), groups, ParamMap::default(), 6).is_err());
    }

    #[test]
    fn dynamic_network_builds_and_floods_bootstrap() {
        let net = DynamicNetwork::linear(&[5, 20], ParamMap::default(), 3, 4, 7).unwrap();
        let procs = net.into_processes();
        assert_eq!(procs.len(), 25);
        let mut engine = Engine::new(SimConfig::default().with_seed(7), procs);
        engine.run_rounds(40);
        // Every leaf process should have found at least one super contact.
        let linked = (5..25)
            .filter(|&i| !engine.process(ProcessId(i)).super_table().is_empty())
            .count();
        assert!(
            linked >= 18,
            "only {linked}/20 leaves bootstrapped a super link"
        );
    }

    #[test]
    fn dynamic_dissemination_end_to_end() {
        // At S = 20 the paper's g = 5 leaves a ≈2% chance that no process
        // elects itself for inter-group forwarding; raise g so the test is
        // statistically sound (the trade-off knob the paper describes).
        let params = ParamMap::uniform(TopicParams::paper_default().with_g(15.0).with_a(3.0));
        let net = DynamicNetwork::linear(&[5, 20], params, 3, 4, 9).unwrap();
        let procs = net.into_processes();
        let mut engine = Engine::new(SimConfig::default().with_seed(9), procs);
        engine.run_rounds(30); // let membership + bootstrap settle
        let id = engine.process_mut(ProcessId(12)).publish("dynamic");
        engine.run_rounds(30);
        let leaf_got = (5..25)
            .filter(|&i| engine.process(ProcessId(i)).has_delivered(id))
            .count();
        let root_got = (0..5)
            .filter(|&i| engine.process(ProcessId(i)).has_delivered(id))
            .count();
        assert!(leaf_got >= 18, "leaf delivery {leaf_got}/20");
        assert!(root_got >= 1, "event failed to climb to the root group");
    }
}
