//! The daMulticast wire protocol.

use crate::event::Event;
use crate::tables::SuperEntry;
use da_membership::MembershipMsg;
use da_simnet::{ProcessId, WireSize};
use da_topics::TopicId;

/// Messages exchanged by daMulticast processes.
///
/// Maps onto the paper's pseudo-code:
///
/// * [`DaMsg::Event`] — `SEND(e_Ti)` of the dissemination algorithm
///   (Fig. 7), both intra-group gossip and inter-group forwarding. Carries
///   the sender's group topic so receivers can account inter-group hops.
/// * [`DaMsg::ReqContact`]/[`DaMsg::AnsContact`] — the bootstrap search
///   (Fig. 4).
/// * [`DaMsg::NewProcessReq`]/[`DaMsg::NewProcessAns`] — supertable
///   refresh (`NEWPROCESS`, Fig. 6).
/// * [`DaMsg::Ping`]/[`DaMsg::Pong`] — the liveness `CHECK` of Fig. 6
///   (footnote 7: "the detection of alive processes is done via
///   timeouts").
/// * [`DaMsg::Membership`] — underlying membership traffic, piggybacking a
///   supertable sample (Sec. V-A.2a).
#[derive(Debug, Clone)]
pub enum DaMsg {
    /// An event in flight, tagged with the topic of the sender's group.
    Event {
        /// The event being disseminated.
        event: Event,
        /// Topic of the group the sender belongs to.
        sender_topic: TopicId,
    },
    /// Bootstrap search request (`REQCONTACT`): the origin looks for
    /// processes interested in any of `topics`.
    ReqContact {
        /// The process the answer should be routed to.
        origin: ProcessId,
        /// De-duplication id, unique per (origin, attempt).
        req_id: u64,
        /// Topics of interest, nearest ancestor first.
        topics: Vec<TopicId>,
        /// Remaining overlay hops before the request expires.
        ttl: u8,
    },
    /// Bootstrap answer (`ANSCONTACT`): contacts interested in `topic`.
    AnsContact {
        /// The topic the contacts are interested in.
        topic: TopicId,
        /// The contacts themselves.
        contacts: Vec<ProcessId>,
    },
    /// A process asks a live superprocess for fresh supergroup contacts.
    NewProcessReq,
    /// The superprocess answers with members of its own group.
    NewProcessAns {
        /// Fresh supergroup contacts (the replier's topic + view sample).
        contacts: Vec<SuperEntry>,
    },
    /// Liveness probe of the maintenance task.
    Ping {
        /// Correlation nonce echoed by the pong.
        nonce: u64,
    },
    /// Liveness answer.
    Pong {
        /// Correlation nonce from the ping.
        nonce: u64,
    },
    /// Underlying membership gossip with a piggybacked supertable sample.
    Membership {
        /// The wrapped flat-membership message.
        inner: MembershipMsg,
        /// Sample of the sender's supertable, merged by receivers.
        stable_sample: Vec<SuperEntry>,
    },
}

impl WireSize for DaMsg {
    fn wire_size(&self) -> usize {
        1 + match self {
            DaMsg::Event { event, .. } => event.wire_size() + 4,
            DaMsg::ReqContact { topics, .. } => 4 + 8 + 4 + topics.len() * 4 + 1,
            DaMsg::AnsContact { contacts, .. } => 4 + contacts.wire_size(),
            DaMsg::NewProcessReq => 0,
            DaMsg::NewProcessAns { contacts } => 4 + contacts.len() * 8,
            DaMsg::Ping { .. } | DaMsg::Pong { .. } => 8,
            DaMsg::Membership {
                inner,
                stable_sample,
            } => inner.wire_size() + 4 + stable_sample.len() * 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::ProcessId;

    #[test]
    fn wire_sizes_positive_and_scale() {
        let ping = DaMsg::Ping { nonce: 1 };
        assert_eq!(ping.wire_size(), 9);
        let small = DaMsg::AnsContact {
            topic: TopicId::ROOT,
            contacts: vec![],
        };
        let big = DaMsg::AnsContact {
            topic: TopicId::ROOT,
            contacts: vec![ProcessId(1); 10],
        };
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn event_message_accounts_payload() {
        let e = Event::new(ProcessId(0), 0, TopicId::ROOT, vec![0u8; 64]);
        let m = DaMsg::Event {
            event: e,
            sender_topic: TopicId::ROOT,
        };
        assert!(m.wire_size() > 64);
    }
}
