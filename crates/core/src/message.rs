//! The daMulticast wire protocol.

use crate::event::Event;
use crate::tables::SuperEntry;
use da_membership::MembershipMsg;
use da_simnet::mc::McHash;
use da_simnet::{ProcessId, WireSize};
use da_topics::TopicId;
use std::hash::Hasher;

/// Messages exchanged by daMulticast processes.
///
/// Maps onto the paper's pseudo-code:
///
/// * [`DaMsg::Event`] — `SEND(e_Ti)` of the dissemination algorithm
///   (Fig. 7), both intra-group gossip and inter-group forwarding. Carries
///   the sender's group topic so receivers can account inter-group hops.
/// * [`DaMsg::ReqContact`]/[`DaMsg::AnsContact`] — the bootstrap search
///   (Fig. 4).
/// * [`DaMsg::NewProcessReq`]/[`DaMsg::NewProcessAns`] — supertable
///   refresh (`NEWPROCESS`, Fig. 6).
/// * [`DaMsg::Ping`]/[`DaMsg::Pong`] — the liveness `CHECK` of Fig. 6
///   (footnote 7: "the detection of alive processes is done via
///   timeouts").
/// * [`DaMsg::Membership`] — underlying membership traffic, piggybacking a
///   supertable sample (Sec. V-A.2a).
#[derive(Debug, Clone)]
pub enum DaMsg {
    /// An event in flight, tagged with the topic of the sender's group.
    Event {
        /// The event being disseminated.
        event: Event,
        /// Topic of the group the sender belongs to.
        sender_topic: TopicId,
    },
    /// Bootstrap search request (`REQCONTACT`): the origin looks for
    /// processes interested in any of `topics`.
    ReqContact {
        /// The process the answer should be routed to.
        origin: ProcessId,
        /// De-duplication id, unique per (origin, attempt).
        req_id: u64,
        /// Topics of interest, nearest ancestor first.
        topics: Vec<TopicId>,
        /// Remaining overlay hops before the request expires.
        ttl: u8,
    },
    /// Bootstrap answer (`ANSCONTACT`): contacts interested in `topic`.
    AnsContact {
        /// The topic the contacts are interested in.
        topic: TopicId,
        /// The contacts themselves.
        contacts: Vec<ProcessId>,
    },
    /// A process asks a live superprocess for fresh supergroup contacts.
    NewProcessReq,
    /// The superprocess answers with members of its own group.
    NewProcessAns {
        /// Fresh supergroup contacts (the replier's topic + view sample).
        contacts: Vec<SuperEntry>,
    },
    /// Liveness probe of the maintenance task.
    Ping {
        /// Correlation nonce echoed by the pong.
        nonce: u64,
    },
    /// Liveness answer.
    Pong {
        /// Correlation nonce from the ping.
        nonce: u64,
    },
    /// Underlying membership gossip with a piggybacked supertable sample.
    Membership {
        /// The wrapped flat-membership message.
        inner: MembershipMsg,
        /// Sample of the sender's supertable, merged by receivers.
        stable_sample: Vec<SuperEntry>,
    },
}

impl WireSize for DaMsg {
    fn wire_size(&self) -> usize {
        1 + match self {
            DaMsg::Event { event, .. } => event.wire_size() + 4,
            DaMsg::ReqContact { topics, .. } => 4 + 8 + 4 + topics.len() * 4 + 1,
            DaMsg::AnsContact { contacts, .. } => 4 + contacts.wire_size(),
            DaMsg::NewProcessReq => 0,
            DaMsg::NewProcessAns { contacts } => 4 + contacts.len() * 8,
            DaMsg::Ping { .. } | DaMsg::Pong { .. } => 8,
            DaMsg::Membership {
                inner,
                stable_sample,
            } => inner.wire_size() + 4 + stable_sample.len() * 8,
        }
    }
}

/// Canonical content hash for the model checker's state digests: a
/// variant tag followed by every field, in declaration order. Payload
/// bytes are included — two events with the same id but different
/// payloads are different states.
impl McHash for DaMsg {
    fn mc_hash(&self, state: &mut dyn Hasher) {
        match self {
            DaMsg::Event {
                event,
                sender_topic,
            } => {
                state.write_u8(0);
                state.write_u32(event.id().publisher.0);
                state.write_u64(event.id().sequence);
                state.write_u64(event.topic().index() as u64);
                state.write(event.payload());
                state.write_u64(sender_topic.index() as u64);
            }
            DaMsg::ReqContact {
                origin,
                req_id,
                topics,
                ttl,
            } => {
                state.write_u8(1);
                state.write_u32(origin.0);
                state.write_u64(*req_id);
                state.write_u64(topics.len() as u64);
                for t in topics {
                    state.write_u64(t.index() as u64);
                }
                state.write_u8(*ttl);
            }
            DaMsg::AnsContact { topic, contacts } => {
                state.write_u8(2);
                state.write_u64(topic.index() as u64);
                state.write_u64(contacts.len() as u64);
                for c in contacts {
                    state.write_u32(c.0);
                }
            }
            DaMsg::NewProcessReq => state.write_u8(3),
            DaMsg::NewProcessAns { contacts } => {
                state.write_u8(4);
                state.write_u64(contacts.len() as u64);
                for e in contacts {
                    state.write_u32(e.pid.0);
                    state.write_u64(e.topic.index() as u64);
                }
            }
            DaMsg::Ping { nonce } => {
                state.write_u8(5);
                state.write_u64(*nonce);
            }
            DaMsg::Pong { nonce } => {
                state.write_u8(6);
                state.write_u64(*nonce);
            }
            DaMsg::Membership {
                inner,
                stable_sample,
            } => {
                state.write_u8(7);
                match inner {
                    MembershipMsg::JoinRequest => state.write_u8(0),
                    MembershipMsg::JoinReply { sample } => {
                        state.write_u8(1);
                        state.write_u64(sample.len() as u64);
                        for p in sample {
                            state.write_u32(p.0);
                        }
                    }
                    MembershipMsg::Digest { sample } => {
                        state.write_u8(2);
                        state.write_u64(sample.len() as u64);
                        for p in sample {
                            state.write_u32(p.0);
                        }
                    }
                }
                state.write_u64(stable_sample.len() as u64);
                for e in stable_sample {
                    state.write_u32(e.pid.0);
                    state.write_u64(e.topic.index() as u64);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::ProcessId;

    #[test]
    fn wire_sizes_positive_and_scale() {
        let ping = DaMsg::Ping { nonce: 1 };
        assert_eq!(ping.wire_size(), 9);
        let small = DaMsg::AnsContact {
            topic: TopicId::ROOT,
            contacts: vec![],
        };
        let big = DaMsg::AnsContact {
            topic: TopicId::ROOT,
            contacts: vec![ProcessId(1); 10],
        };
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn event_message_accounts_payload() {
        let e = Event::new(ProcessId(0), 0, TopicId::ROOT, vec![0u8; 64]);
        let m = DaMsg::Event {
            event: e,
            sender_topic: TopicId::ROOT,
        };
        assert!(m.wire_size() > 64);
    }
}
