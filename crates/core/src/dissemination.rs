//! The dissemination decision logic (Fig. 7 of the paper).
//!
//! Separated from the protocol state machine so the randomized decisions
//! can be unit-tested in isolation. Given the per-topic parameters and the
//! two membership tables, [`plan_dissemination`] decides
//!
//! 1. **inter-group forwarding**: with probability `p_sel = g / S` the
//!    process elects itself as a link and then sends the event to each of
//!    its supertable entries with probability `p_a = a / z` (Fig. 7,
//!    lines 3–7), and
//! 2. **intra-group gossip**: the event goes to `fanout(S)` distinct
//!    processes drawn uniformly from the topic table (lines 8–14, the
//!    `Table − Ω` loop).
//!
//! A note on the pseudo-code: Fig. 7 line 3 reads `if RAND() ≥ p_sel`,
//! which would elect with probability `1 − p_sel` and contradicts both the
//! prose ("with a probability p_sel ... a process decides to take part",
//! Sec. V-B) and the analysis (`nbSuperMsg = S·p_sel·p_a·z·p_succ`,
//! Sec. VI-B). We follow the prose and the analysis: elect with
//! probability `p_sel`.

use crate::params::TopicParams;
use crate::tables::{SuperEntry, SuperTable};
use da_simnet::ProcessId;
use rand::Rng;

/// The outcome of one dissemination decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisseminationPlan {
    /// Whether the process elected itself as an inter-group link.
    pub elected: bool,
    /// Supertable entries chosen to receive the event (empty when not
    /// elected or when each per-entry `p_a` draw failed).
    pub super_targets: Vec<SuperEntry>,
    /// Distinct topic-table members chosen for intra-group gossip.
    pub gossip_targets: Vec<ProcessId>,
}

impl DisseminationPlan {
    /// Total number of event messages this plan will emit.
    #[must_use]
    pub fn message_count(&self) -> usize {
        self.super_targets.len() + self.gossip_targets.len()
    }
}

/// Draws one dissemination plan (Fig. 7).
///
/// `group_size` is `S_Ti` — the (expected) size of the process' group,
/// which parameterises both `p_sel` and the gossip fanout. `topic_table`
/// is the process' current view of its group; `stable` its supertopic
/// table.
pub fn plan_dissemination<R: Rng>(
    params: &TopicParams,
    group_size: usize,
    topic_table: &[ProcessId],
    stable: &SuperTable,
    rng: &mut R,
) -> DisseminationPlan {
    // (1) Inter-group forwarding: self-election, then per-entry spray.
    let p_sel = params.p_sel(group_size);
    let elected = !stable.is_empty() && p_sel > 0.0 && rng.gen_bool(p_sel);
    let mut super_targets = Vec::new();
    if elected {
        let p_a = params.p_a();
        for &entry in stable.entries() {
            if p_a >= 1.0 || (p_a > 0.0 && rng.gen_bool(p_a)) {
                super_targets.push(entry);
            }
        }
    }

    // (2) Intra-group gossip: fanout(S) distinct targets from the table.
    let fanout = params.fanout.fanout(group_size);
    let gossip_targets = sample_distinct(topic_table, fanout, rng);

    DisseminationPlan {
        elected,
        super_targets,
        gossip_targets,
    }
}

/// Uniformly samples up to `k` distinct entries of `pool` (the paper's
/// `Table − Ω` loop: once a process is picked it leaves the candidate set).
fn sample_distinct<R: Rng>(pool: &[ProcessId], k: usize, rng: &mut R) -> Vec<ProcessId> {
    use rand::seq::SliceRandom;
    let mut candidates = pool.to_vec();
    candidates.shuffle(rng);
    candidates.truncate(k);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::rng_from_seed;
    use da_topics::TopicId;

    fn stable_with(n: u32) -> SuperTable {
        let mut rng = rng_from_seed(99);
        let mut t = SuperTable::new(ProcessId(0), n as usize);
        for i in 0..n {
            t.insert(
                SuperEntry {
                    pid: ProcessId(1000 + i),
                    topic: TopicId::ROOT,
                },
                &mut rng,
            );
        }
        t
    }

    fn table(n: u32) -> Vec<ProcessId> {
        (1..=n).map(ProcessId).collect()
    }

    #[test]
    fn gossip_targets_distinct_and_bounded_by_fanout() {
        let mut rng = rng_from_seed(1);
        let params = TopicParams::paper_default();
        let plan = plan_dissemination(&params, 1000, &table(30), &stable_with(3), &mut rng);
        // log10(1000) + 5 = 8.
        assert_eq!(plan.gossip_targets.len(), 8);
        let mut sorted = plan.gossip_targets.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "targets are distinct");
    }

    #[test]
    fn small_table_limits_gossip() {
        let mut rng = rng_from_seed(2);
        let params = TopicParams::paper_default();
        let plan = plan_dissemination(&params, 1000, &table(3), &stable_with(3), &mut rng);
        assert_eq!(plan.gossip_targets.len(), 3, "cannot exceed the table");
    }

    #[test]
    fn election_rate_close_to_p_sel() {
        // S = 100, g = 5 → p_sel = 0.05.
        let params = TopicParams::paper_default();
        let stable = stable_with(3);
        let mut rng = rng_from_seed(3);
        let trials = 20_000;
        let elected = (0..trials)
            .filter(|_| plan_dissemination(&params, 100, &table(10), &stable, &mut rng).elected)
            .count();
        let rate = elected as f64 / trials as f64;
        assert!(
            (rate - 0.05).abs() < 0.01,
            "election rate {rate} far from p_sel = 0.05"
        );
    }

    #[test]
    fn tiny_group_always_elects() {
        // S = 3 < g = 5 → p_sel clamps to 1.
        let params = TopicParams::paper_default();
        let stable = stable_with(3);
        let mut rng = rng_from_seed(4);
        for _ in 0..50 {
            let plan = plan_dissemination(&params, 3, &table(2), &stable, &mut rng);
            assert!(plan.elected);
        }
    }

    #[test]
    fn spray_respects_p_a() {
        // a = 1, z = 3 → each entry receives with probability 1/3; the
        // expected number of super targets per elected plan is 1.
        let params = TopicParams::paper_default().with_g(5.0);
        let stable = stable_with(3);
        let mut rng = rng_from_seed(5);
        let mut total = 0usize;
        let mut elected_count = 0usize;
        for _ in 0..20_000 {
            let plan = plan_dissemination(&params, 3, &table(2), &stable, &mut rng);
            if plan.elected {
                elected_count += 1;
                total += plan.super_targets.len();
            }
        }
        let avg = total as f64 / elected_count as f64;
        assert!((avg - 1.0).abs() < 0.05, "avg spray {avg}, expected ≈ 1");
    }

    #[test]
    fn a_equals_z_sprays_everyone() {
        let params = TopicParams::paper_default().with_a(3.0);
        let stable = stable_with(3);
        let mut rng = rng_from_seed(6);
        let plan = plan_dissemination(&params, 2, &table(1), &stable, &mut rng);
        assert!(plan.elected, "p_sel clamps to 1 for S=2 < g");
        assert_eq!(plan.super_targets.len(), 3, "p_a = 1 hits every entry");
    }

    #[test]
    fn empty_supertable_never_elects() {
        let params = TopicParams::paper_default();
        let stable = SuperTable::new(ProcessId(0), 3);
        let mut rng = rng_from_seed(7);
        for _ in 0..100 {
            let plan = plan_dissemination(&params, 2, &table(5), &stable, &mut rng);
            assert!(!plan.elected);
            assert!(plan.super_targets.is_empty());
        }
    }

    #[test]
    fn empty_topic_table_no_gossip() {
        let params = TopicParams::paper_default();
        let mut rng = rng_from_seed(8);
        let plan = plan_dissemination(&params, 1000, &[], &stable_with(2), &mut rng);
        assert!(plan.gossip_targets.is_empty());
    }

    #[test]
    fn message_count_sums_both_channels() {
        let mut rng = rng_from_seed(9);
        let params = TopicParams::paper_default().with_a(3.0);
        let plan = plan_dissemination(&params, 3, &table(10), &stable_with(3), &mut rng);
        assert_eq!(
            plan.message_count(),
            plan.super_targets.len() + plan.gossip_targets.len()
        );
    }
}
