//! The multiple-inheritance protocol — Sec. VIII of the paper, runnable.
//!
//! "Multiple supertopics (i.e., multiple inheritance) could be easily
//! supported by either adapting the membership algorithm or by adding a
//! supertopic table for each supertopic. Neither would hamper the overall
//! performance of the algorithm."
//!
//! [`DagProcess`] takes the second route: one [`SuperTable`] per direct
//! supertopic (a [`MultiSuperTables`]), with the Fig. 7 election/spray
//! decision run independently per table, so an event climbs *every*
//! inclusion edge of the [`TopicDag`]. Everything else — intra-group
//! gossip, de-duplication, interest checks — is unchanged from
//! [`crate::DaProcess`].
//!
//! The DAG variant is provided in the paper's static simulation mode
//! (tables drawn at build time): the bootstrap/maintenance tasks of
//! Figs. 4 & 6 generalise per-table exactly as in the tree case and are
//! exercised there; duplicating them here would not change what the
//! extension demonstrates (events crossing *all* inclusion edges with
//! per-edge cost matching the single-inheritance analysis).

use crate::event::{Event, EventId};
use crate::exec::{Exec, ExecProtocol};
use crate::message::DaMsg;
use crate::multi_super::{plan_multi_dissemination, MultiSuperTables};
use crate::params::TopicParams;
use crate::tables::SuperEntry;
use crate::DaError;
use da_membership::static_init::static_topic_tables;
use da_simnet::{derive_seed, rng_from_seed, Ctx, ProcessId, Protocol};
use da_topics::dag::TopicDag;
use da_topics::TopicId;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// A daMulticast process over a multiple-inheritance topic DAG.
///
/// ```
/// use da_topics::dag::TopicDag;
/// use damulticast::{DagNetwork, TopicParams};
/// use da_simnet::{Engine, ProcessId, SimConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dag = TopicDag::new();
/// let sport = dag.add_topic("sport", &[dag.root()])?;
/// let swiss = dag.add_topic("swiss", &[dag.root()])?;
/// let ski = dag.add_topic("ski", &[sport, swiss])?; // two supertopics
///
/// let groups = vec![
///     (sport, (0..5).map(ProcessId).collect()),
///     (swiss, (5..10).map(ProcessId).collect()),
///     (ski, (10..20).map(ProcessId).collect()),
/// ];
/// let params = TopicParams::paper_default().with_g(30.0).with_a(3.0);
/// let net = DagNetwork::build(dag, groups, params, 7)?;
/// let mut engine = Engine::new(SimConfig::default().with_seed(7), net.into_processes());
/// engine.process_mut(ProcessId(12)).publish("slalom");
/// engine.run_until_quiescent(64);
/// // The event climbed BOTH inclusion edges.
/// assert!(engine.processes().filter(|(_, p)| !p.delivered().is_empty()).count() > 10);
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct DagProcess {
    me: ProcessId,
    topic: TopicId,
    dag: Arc<TopicDag>,
    params: TopicParams,
    group_size: usize,
    topic_table: Vec<ProcessId>,
    supers: MultiSuperTables,
    seen: HashSet<EventId>,
    delivered: Vec<Event>,
    parasite_count: u64,
    pending_publish: Vec<Event>,
    next_sequence: u64,
    label_intra: String,
    label_inter: String,
    label_delivered: String,
}

impl DagProcess {
    /// Builds a static-mode DAG process with pre-drawn tables.
    #[must_use]
    pub fn new(
        me: ProcessId,
        topic: TopicId,
        dag: Arc<TopicDag>,
        params: TopicParams,
        group_size: usize,
        topic_table: Vec<ProcessId>,
        super_entries: Vec<SuperEntry>,
    ) -> Self {
        let mut supers = MultiSuperTables::new(me, topic, &dag, params.z);
        let mut rng = rng_from_seed(derive_seed(0xDA6, me.0 as u64));
        for entry in super_entries {
            supers.insert(entry, &mut rng);
        }
        let name = dag.name(topic).to_owned();
        DagProcess {
            me,
            topic,
            dag,
            params,
            group_size,
            topic_table,
            supers,
            seen: HashSet::new(),
            delivered: Vec::new(),
            parasite_count: 0,
            pending_publish: Vec::new(),
            next_sequence: 0,
            label_intra: format!("dag.intra.{name}"),
            label_inter: format!("dag.inter_out.{name}"),
            label_delivered: format!("dag.delivered.{name}"),
        }
    }

    /// The process identity.
    #[must_use]
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// The topic this process subscribed to.
    #[must_use]
    pub fn topic(&self) -> TopicId {
        self.topic
    }

    /// The per-supertopic link tables.
    #[must_use]
    pub fn super_tables(&self) -> &MultiSuperTables {
        &self.supers
    }

    /// The topic table (view of the own group).
    #[must_use]
    pub fn topic_table(&self) -> &[ProcessId] {
        &self.topic_table
    }

    /// Events delivered to the application.
    #[must_use]
    pub fn delivered(&self) -> &[Event] {
        &self.delivered
    }

    /// True when `id` was delivered here.
    #[must_use]
    pub fn has_delivered(&self, id: EventId) -> bool {
        self.delivered.iter().any(|e| e.id() == id)
    }

    /// Parasite receptions (events outside this process' interest cone).
    #[must_use]
    pub fn parasite_count(&self) -> u64 {
        self.parasite_count
    }

    /// Total membership entries: one topic table plus `k·z` supertable
    /// entries for `k` direct supertopics — still independent of the DAG's
    /// total size, the Sec. VIII claim.
    #[must_use]
    pub fn memory_entries(&self) -> usize {
        self.topic_table.len() + self.supers.total_entries()
    }

    /// Queues a publication on this process' own topic.
    pub fn publish(&mut self, payload: impl Into<bytes::Bytes>) -> EventId {
        let event = Event::new(self.me, self.next_sequence, self.topic, payload);
        self.next_sequence += 1;
        let id = event.id();
        self.pending_publish.push(event);
        id
    }

    /// DAG interest: `topic` is our own topic or a DAG-descendant of it.
    #[must_use]
    pub fn is_interested_in(&self, topic: TopicId) -> bool {
        topic == self.topic || self.dag.includes(self.topic, topic)
    }

    fn disseminate<X: Exec<Msg = DaMsg>>(&mut self, event: &Event, ctx: &mut X) {
        let plan = plan_multi_dissemination(
            &self.params,
            self.group_size,
            &self.topic_table,
            &self.supers,
            ctx.rng(),
        );
        for entry in &plan.super_targets {
            ctx.bump(&self.label_inter);
            ctx.send(
                entry.pid,
                DaMsg::Event {
                    event: event.clone(),
                    sender_topic: self.topic,
                },
            );
        }
        for &target in &plan.gossip_targets {
            ctx.bump(&self.label_intra);
            ctx.send(
                target,
                DaMsg::Event {
                    event: event.clone(),
                    sender_topic: self.topic,
                },
            );
        }
    }
}

impl ExecProtocol for DagProcess {
    type Msg = DaMsg;

    fn on_message<X: Exec<Msg = DaMsg>>(&mut self, _from: ProcessId, msg: DaMsg, ctx: &mut X) {
        // Static mode: only event traffic exists in a DAG network.
        let DaMsg::Event { event, .. } = msg else {
            return;
        };
        if !self.is_interested_in(event.topic()) {
            self.parasite_count += 1;
            ctx.bump("dag.parasite");
            return;
        }
        if !self.seen.insert(event.id()) {
            ctx.bump("dag.duplicate");
            return;
        }
        ctx.bump(&self.label_delivered);
        self.delivered.push(event.clone());
        self.disseminate(&event, ctx);
    }

    fn on_round<X: Exec<Msg = DaMsg>>(&mut self, _round: u64, ctx: &mut X) {
        let publishes = std::mem::take(&mut self.pending_publish);
        for event in publishes {
            if self.seen.insert(event.id()) {
                ctx.bump(&self.label_delivered);
                self.delivered.push(event.clone());
            }
            self.disseminate(&event, ctx);
        }
    }
}

/// Simulator adapter: pure delegation into the [`ExecProtocol`] impl.
impl Protocol for DagProcess {
    type Msg = DaMsg;

    fn on_message(&mut self, from: ProcessId, msg: DaMsg, ctx: &mut Ctx<'_, DaMsg>) {
        ExecProtocol::on_message(self, from, msg, ctx);
    }

    fn on_round(&mut self, round: u64, ctx: &mut Ctx<'_, DaMsg>) {
        ExecProtocol::on_round(self, round, ctx);
    }
}

/// A static population over a topic DAG: one gossip group per topic, one
/// supertable per inclusion edge.
#[derive(Debug)]
pub struct DagNetwork {
    dag: Arc<TopicDag>,
    groups: Vec<(TopicId, Vec<ProcessId>)>,
    processes: Vec<DagProcess>,
}

impl DagNetwork {
    /// Builds the network from `(topic, members)` groups. For every direct
    /// supertopic edge of a populated group, a supertable is drawn from
    /// the nearest populated group reachable upward from that supertopic
    /// (breadth-first over the DAG's parent edges — the DAG analogue of
    /// the paper's "first topic that induces Ti", Sec. V-A.1).
    ///
    /// # Errors
    ///
    /// Returns [`DaError::InvalidParameter`] on invalid parameters or
    /// non-dense process ids, [`DaError::EmptyGroup`] when nobody
    /// subscribes to anything.
    pub fn build(
        dag: TopicDag,
        groups: Vec<(TopicId, Vec<ProcessId>)>,
        params: TopicParams,
        seed: u64,
    ) -> Result<Self, DaError> {
        params.validate()?;
        if groups.iter().all(|(_, m)| m.is_empty()) {
            return Err(DaError::EmptyGroup {
                topic: "(dag root)".to_owned(),
            });
        }
        let dag = Arc::new(dag);
        let members_of: HashMap<TopicId, &Vec<ProcessId>> =
            groups.iter().map(|(t, m)| (*t, m)).collect();
        let mut rng = rng_from_seed(derive_seed(seed, 0xDA6_57A7));
        let mut processes: Vec<(ProcessId, DagProcess)> = Vec::new();

        for (topic, members) in &groups {
            if members.is_empty() {
                continue;
            }
            let topic_tables = static_topic_tables(members, params.b, &mut rng).map_err(|e| {
                DaError::InvalidParameter {
                    reason: e.to_string(),
                }
            })?;

            // One supertable per direct parent edge, sourced from the
            // nearest populated ancestor reachable from that parent.
            let mut per_edge: Vec<(TopicId, Vec<ProcessId>)> = Vec::new();
            for &parent in dag.parents(*topic) {
                if let Some((anchor, supergroup)) = nearest_populated(&dag, parent, &members_of) {
                    // Entries are tagged with the *edge's* parent topic so
                    // they land in that edge's table; the contacts come
                    // from the anchor group.
                    let _ = anchor;
                    per_edge.push((parent, supergroup.clone()));
                }
            }

            for &pid in members {
                let mut supers = Vec::new();
                for (edge_topic, supergroup) in &per_edge {
                    use rand::seq::SliceRandom;
                    let mut pool: Vec<ProcessId> =
                        supergroup.iter().copied().filter(|&p| p != pid).collect();
                    pool.shuffle(&mut rng);
                    pool.truncate(params.z);
                    supers.extend(pool.into_iter().map(|p| SuperEntry {
                        pid: p,
                        topic: *edge_topic,
                    }));
                }
                processes.push((
                    pid,
                    DagProcess::new(
                        pid,
                        *topic,
                        Arc::clone(&dag),
                        params,
                        members.len(),
                        topic_tables[&pid].clone(),
                        supers,
                    ),
                ));
            }
        }

        processes.sort_by_key(|(pid, _)| *pid);
        for (i, (pid, _)) in processes.iter().enumerate() {
            if pid.index() != i {
                return Err(DaError::InvalidParameter {
                    reason: format!("process ids must be dense 0..n; found {pid} at {i}"),
                });
            }
        }
        Ok(DagNetwork {
            dag,
            groups,
            processes: processes.into_iter().map(|(_, p)| p).collect(),
        })
    }

    /// The topic DAG.
    #[must_use]
    pub fn dag(&self) -> &Arc<TopicDag> {
        &self.dag
    }

    /// The `(topic, members)` groups.
    #[must_use]
    pub fn groups(&self) -> &[(TopicId, Vec<ProcessId>)] {
        &self.groups
    }

    /// Consumes the network, yielding processes for the engine.
    #[must_use]
    pub fn into_processes(self) -> Vec<DagProcess> {
        self.processes
    }
}

/// Breadth-first search upward from `start` (inclusive) for the nearest
/// topic with a non-empty group.
fn nearest_populated<'a>(
    dag: &TopicDag,
    start: TopicId,
    members_of: &HashMap<TopicId, &'a Vec<ProcessId>>,
) -> Option<(TopicId, &'a Vec<ProcessId>)> {
    let mut queue = VecDeque::from([start]);
    let mut seen = HashSet::from([start]);
    while let Some(t) = queue.pop_front() {
        if let Some(members) = members_of.get(&t) {
            if !members.is_empty() {
                return Some((t, members));
            }
        }
        for &p in dag.parents(t) {
            if seen.insert(p) {
                queue.push_back(p);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_simnet::{Engine, SimConfig};

    /// root ← sport, root ← swiss, {sport, swiss} ← ski; groups:
    /// 4 root fans (pids 0–3), 6 sport fans (4–9), 6 swiss fans (10–15),
    /// 12 ski fans (16–27).
    fn diamond_network(seed: u64) -> (DagNetwork, [TopicId; 4]) {
        let mut dag = TopicDag::new();
        let root = dag.root();
        let sport = dag.add_topic("sport", &[root]).unwrap();
        let swiss = dag.add_topic("swiss", &[root]).unwrap();
        let ski = dag.add_topic("ski", &[sport, swiss]).unwrap();
        let groups = vec![
            (root, (0..4).map(ProcessId).collect()),
            (sport, (4..10).map(ProcessId).collect()),
            (swiss, (10..16).map(ProcessId).collect()),
            (ski, (16..28).map(ProcessId).collect()),
        ];
        // Small groups: pin the trade-off knobs high so single events
        // cross every edge deterministically enough to assert on.
        let params = TopicParams::paper_default().with_g(30.0).with_a(3.0);
        let net = DagNetwork::build(dag, groups, params, seed).unwrap();
        (net, [root, sport, swiss, ski])
    }

    #[test]
    fn ski_event_climbs_both_edges() {
        let (net, _) = diamond_network(1);
        let mut engine = Engine::new(SimConfig::default().with_seed(1), net.into_processes());
        let id = engine.process_mut(ProcessId(20)).publish("slalom gold");
        engine.run_until_quiescent(64);

        let count = |range: std::ops::Range<u32>| {
            range
                .filter(|&i| engine.process(ProcessId(i)).has_delivered(id))
                .count()
        };
        assert_eq!(count(16..28), 12, "all ski fans");
        assert!(count(4..10) >= 5, "sport fans via the sport edge");
        assert!(count(10..16) >= 5, "swiss fans via the swiss edge");
        assert!(count(0..4) >= 3, "root fans via either path");
        assert_eq!(engine.counters().get("dag.parasite"), 0);
    }

    #[test]
    fn diamond_paths_deduplicate_at_root() {
        let (net, _) = diamond_network(2);
        let mut engine = Engine::new(SimConfig::default().with_seed(2), net.into_processes());
        engine.process_mut(ProcessId(20)).publish("x");
        engine.run_until_quiescent(64);
        // Root fans sit on two converging paths; dedup must keep delivery
        // single.
        for i in 0..4 {
            let p = engine.process(ProcessId(i));
            assert!(p.delivered().len() <= 1);
        }
        assert!(
            engine.counters().get("dag.duplicate") > 0,
            "converging paths must produce (suppressed) duplicates"
        );
    }

    #[test]
    fn sibling_subtrees_stay_isolated() {
        let (net, _) = diamond_network(3);
        let mut engine = Engine::new(SimConfig::default().with_seed(3), net.into_processes());
        // A sport-only event: swiss fans must not receive it.
        let id = engine.process_mut(ProcessId(5)).publish("football");
        engine.run_until_quiescent(64);
        for i in 10..16 {
            assert!(
                !engine.process(ProcessId(i)).has_delivered(id),
                "swiss fan {i} got a sport-only event"
            );
        }
        for i in 16..28 {
            assert!(
                !engine.process(ProcessId(i)).has_delivered(id),
                "ski fan {i} got a strict-supertopic event"
            );
        }
        assert_eq!(engine.counters().get("dag.parasite"), 0);
    }

    #[test]
    fn memory_is_edge_count_times_z() {
        let (net, _) = diamond_network(4);
        let procs = net.into_processes();
        // Ski fans have two edges → up to 2z super entries; sport/swiss
        // fans one edge → up to z; root fans none.
        let by_pid = |i: u32| &procs[i as usize];
        assert!(by_pid(20).super_tables().total_entries() <= 2 * 3);
        assert!(by_pid(20).super_tables().total_entries() > 3);
        assert!(by_pid(5).super_tables().total_entries() <= 3);
        assert_eq!(by_pid(0).super_tables().total_entries(), 0);
    }

    #[test]
    fn empty_parent_group_bridged_upward() {
        // root ← a ← b, where a has no subscribers: b links to root.
        let mut dag = TopicDag::new();
        let root = dag.root();
        let a = dag.add_topic("a", &[root]).unwrap();
        let b = dag.add_topic("b", &[a]).unwrap();
        let groups = vec![
            (root, (0..4).map(ProcessId).collect()),
            (a, vec![]),
            (b, (4..12).map(ProcessId).collect()),
        ];
        let params = TopicParams::paper_default().with_g(30.0).with_a(3.0);
        let net = DagNetwork::build(dag, groups, params, 5).unwrap();
        let procs = net.into_processes();
        for p in procs.iter().skip(4) {
            assert!(
                p.memory_entries() > p.topic_table().len(),
                "bridged links exist"
            );
        }
        let mut engine = Engine::new(SimConfig::default().with_seed(5), procs);
        let id = engine.process_mut(ProcessId(6)).publish("up");
        engine.run_until_quiescent(64);
        let roots = (0..4)
            .filter(|&i| engine.process(ProcessId(i)).has_delivered(id))
            .count();
        assert!(roots >= 3, "bridge must carry the event to the root group");
    }

    #[test]
    fn build_validation() {
        let dag = TopicDag::new();
        let root = dag.root();
        assert!(matches!(
            DagNetwork::build(dag, vec![(root, vec![])], TopicParams::paper_default(), 1),
            Err(DaError::EmptyGroup { .. })
        ));
        let dag = TopicDag::new();
        let root = dag.root();
        assert!(DagNetwork::build(
            dag,
            vec![(root, vec![ProcessId(5)])], // non-dense
            TopicParams::paper_default(),
            1
        )
        .is_err());
    }

    #[test]
    fn topic_table_helper_access() {
        let (net, ids) = diamond_network(6);
        let procs = net.into_processes();
        assert_eq!(procs[20].topic(), ids[3]);
        assert_eq!(procs[20].id(), ProcessId(20));
        assert!(procs[20].is_interested_in(ids[3]));
        assert!(!procs[20].is_interested_in(ids[1]));
        assert!(procs[0].is_interested_in(ids[3]), "root wants everything");
    }
}
