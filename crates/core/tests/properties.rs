//! Property tests on the protocol building blocks: dissemination-plan
//! statistics, supertable laws, bootstrap narrowing, and maintenance
//! phases, over arbitrary inputs.

use da_simnet::{rng_from_seed, ProcessId};
use da_topics::{TopicHierarchy, TopicId};
use damulticast::{
    plan_dissemination, BootstrapAction, BootstrapTask, MaintenanceAction, MaintenanceTask,
    SuperEntry, SuperTable, TopicParams,
};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_params() -> impl Strategy<Value = TopicParams> {
    (1.0f64..30.0, 1usize..6, 0.0f64..8.0).prop_map(|(g, z, c)| TopicParams {
        g,
        z,
        a: 1.0,
        tau: 1.min(z),
        fanout: da_membership::FanoutRule::LnPlusC { c },
        ..TopicParams::paper_default()
    })
}

proptest! {
    /// Plans never exceed their sources: gossip targets ⊆ topic table
    /// (distinct, ≤ fanout), super targets ⊆ supertable entries.
    #[test]
    fn plan_respects_sources(
        params in arb_params(),
        group_size in 1usize..5_000,
        table_size in 0usize..40,
        stable_size in 0usize..6,
        seed in 0u64..10_000,
    ) {
        let mut rng = rng_from_seed(seed);
        let table: Vec<ProcessId> = (1..=table_size as u32).map(ProcessId).collect();
        let mut stable = SuperTable::new(ProcessId(0), stable_size);
        for i in 0..stable_size as u32 {
            stable.insert(
                SuperEntry { pid: ProcessId(1000 + i), topic: TopicId::ROOT },
                &mut rng,
            );
        }
        let plan = plan_dissemination(&params, group_size, &table, &stable, &mut rng);

        let fanout = params.fanout.fanout(group_size);
        prop_assert!(plan.gossip_targets.len() <= fanout.min(table.len()));
        let unique: HashSet<ProcessId> = plan.gossip_targets.iter().copied().collect();
        prop_assert_eq!(unique.len(), plan.gossip_targets.len(), "distinct targets");
        for t in &plan.gossip_targets {
            prop_assert!(table.contains(t));
        }
        for e in &plan.super_targets {
            prop_assert!(stable.contains(e.pid));
        }
        if !plan.elected {
            prop_assert!(plan.super_targets.is_empty());
        }
        if stable.is_empty() {
            prop_assert!(!plan.elected);
        }
        prop_assert_eq!(
            plan.message_count(),
            plan.gossip_targets.len() + plan.super_targets.len()
        );
    }

    /// Election frequency tracks p_sel = g/S over many draws.
    #[test]
    fn election_frequency_tracks_p_sel(
        g in 1.0f64..20.0,
        group_size in 20usize..2_000,
        seed in 0u64..1_000,
    ) {
        let params = TopicParams::paper_default().with_g(g);
        let mut rng = rng_from_seed(seed);
        let table: Vec<ProcessId> = (1..=10).map(ProcessId).collect();
        let mut stable = SuperTable::new(ProcessId(0), 3);
        for i in 0..3 {
            stable.insert(
                SuperEntry { pid: ProcessId(1000 + i), topic: TopicId::ROOT },
                &mut rng,
            );
        }
        let trials = 4_000;
        let elected = (0..trials)
            .filter(|_| plan_dissemination(&params, group_size, &table, &stable, &mut rng).elected)
            .count();
        let p_sel = (g / group_size as f64).min(1.0);
        let rate = elected as f64 / f64::from(trials);
        // 4000 Bernoulli draws: allow 4 standard deviations of slack.
        let sigma = (p_sel * (1.0 - p_sel) / f64::from(trials)).sqrt();
        prop_assert!(
            (rate - p_sel).abs() <= 4.0 * sigma + 0.005,
            "rate {} vs p_sel {} (sigma {})", rate, p_sel, sigma
        );
    }

    /// Supertable MERGE (footnote 5): dead residents leave, fresh fill up
    /// to capacity, favourites (alive residents) always survive.
    #[test]
    fn supertable_merge_laws(
        capacity in 1usize..8,
        residents in prop::collection::vec(1u32..50, 0..8),
        dead in prop::collection::hash_set(1u32..50, 0..8),
        fresh in prop::collection::vec(50u32..90, 0..8),
        seed in 0u64..10_000,
    ) {
        let mut rng = rng_from_seed(seed);
        let mut table = SuperTable::new(ProcessId(0), capacity);
        for &r in &residents {
            table.insert(SuperEntry { pid: ProcessId(r), topic: TopicId::ROOT }, &mut rng);
        }
        let survivors: Vec<ProcessId> = table
            .entries()
            .iter()
            .map(|e| e.pid)
            .filter(|p| !dead.contains(&p.0))
            .collect();
        let fresh_entries: Vec<SuperEntry> = fresh
            .iter()
            .map(|&f| SuperEntry { pid: ProcessId(f), topic: TopicId::ROOT })
            .collect();
        table.merge(&fresh_entries, |p| !dead.contains(&p.0));

        prop_assert!(table.len() <= capacity);
        for s in &survivors {
            prop_assert!(table.contains(*s), "alive resident evicted by merge");
        }
        for e in table.entries() {
            prop_assert!(!dead.contains(&e.pid.0), "dead entry survived merge");
        }
    }

    /// Bootstrap scope grows monotonically up the ancestor chain on
    /// timeouts and never contains topics below the direct supertopic.
    #[test]
    fn bootstrap_widening_monotone(
        levels in 2usize..8,
        timeout in 1u64..4,
        rounds in 1u64..40,
    ) {
        let (h, ids) = TopicHierarchy::linear_chain(levels);
        let leaf = ids[levels - 1];
        let mut task = BootstrapTask::new(leaf, &h, timeout).unwrap();
        task.start(0);
        let mut prev_len = task.wanted().len();
        for round in 1..=rounds {
            match task.on_round(round, &h) {
                BootstrapAction::SendRequest { topics, .. } => {
                    prop_assert!(topics.len() >= prev_len);
                    prop_assert!(topics.len() < levels, "scope capped at the root");
                    // Every requested topic strictly includes the leaf.
                    for t in &topics {
                        prop_assert!(h.includes(*t, leaf));
                    }
                    prev_len = topics.len();
                }
                BootstrapAction::Idle => {}
            }
        }
    }

    /// An answer from any strict ancestor narrows the scope to topics
    /// below it (or finishes, for the direct supertopic).
    #[test]
    fn bootstrap_answer_narrows(
        levels in 3usize..8,
        answer_level in 0usize..6,
        widenings in 0u64..6,
    ) {
        let (h, ids) = TopicHierarchy::linear_chain(levels);
        let leaf = ids[levels - 1];
        let answer_level = answer_level.min(levels - 2);
        let mut task = BootstrapTask::new(leaf, &h, 1).unwrap();
        task.start(0);
        for round in 1..=widenings {
            let _ = task.on_round(round, &h);
        }
        let answered = ids[answer_level];
        let finished = task.on_answer(answered, &h);
        if answered == ids[levels - 2] {
            prop_assert!(finished, "direct supertopic answer must finish");
            prop_assert!(!task.is_active());
        } else {
            prop_assert!(!finished);
            // Remaining wanted topics must all be strictly below the
            // answered ancestor.
            for t in task.wanted() {
                prop_assert!(
                    h.includes(answered, *t),
                    "wanted topic not below the answered ancestor"
                );
            }
        }
    }

    /// Maintenance never pings while a check is in flight, and refresh
    /// triggers exactly when the live count is ≤ τ.
    #[test]
    fn maintenance_phases(
        period in 1u64..6,
        ping_timeout in 1u64..5,
        entries in prop::collection::vec(1u32..30, 1..6),
        answering in prop::collection::hash_set(1u32..30, 0..6),
        tau in 0usize..4,
    ) {
        let mut task = MaintenanceTask::new(period, ping_timeout);
        let pids: Vec<ProcessId> = entries.iter().map(|&e| ProcessId(e)).collect();
        // Find the first Ping.
        let mut round = 0;
        let ping_round = loop {
            match task.on_round(round, &pids, true, tau) {
                MaintenanceAction::Ping { targets, .. } => {
                    prop_assert_eq!(&targets, &pids, "pings go to every entry");
                    break round;
                }
                MaintenanceAction::RestartBootstrap => {
                    prop_assert!(pids.is_empty());
                    return Ok(());
                }
                _ => {}
            }
            round += 1;
            prop_assert!(round < 20, "ping never issued");
        };
        // Answers arrive immediately from the `answering` subset.
        for &a in &answering {
            task.on_pong(ProcessId(a), ping_round);
        }
        // While waiting, no second ping.
        for r in ping_round + 1..ping_round + ping_timeout {
            let action = task.on_round(r, &pids, true, tau);
            prop_assert!(
                !matches!(action, MaintenanceAction::Ping { .. }),
                "double ping while awaiting pongs"
            );
        }
        // At the timeout, refresh iff live ≤ τ.
        let action = task.on_round(ping_round + ping_timeout, &pids, true, tau);
        let live = pids.iter().filter(|p| answering.contains(&p.0)).count();
        if live <= tau {
            match action {
                MaintenanceAction::Refresh { alive, dead } => {
                    prop_assert_eq!(alive.len(), live);
                    prop_assert_eq!(dead.len(), pids.len() - live);
                }
                other => prop_assert!(false, "expected Refresh, got {:?}", other),
            }
        } else {
            let acceptable = matches!(
                action,
                MaintenanceAction::Idle | MaintenanceAction::Ping { .. }
            );
            prop_assert!(acceptable, "unexpected action {:?}", action);
        }
    }
}
