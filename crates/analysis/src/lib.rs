//! # da-analysis — the paper's analytical model
//!
//! Every closed form of Sec. VI and the Appendix of *Data-Aware Multicast*
//! (Baehni, Eugster, Guerraoui, DSN 2004), as plain functions:
//!
//! * [`complexity`] — expected message counts for daMulticast and the
//!   three baselines (gossip broadcast, gossip multicast, hierarchical
//!   gossip broadcast), plus the `O(S_Tmax · ln S_Tmax)` worst-case bound.
//! * [`memory`] — per-process membership-table sizes (`totalMbInfo`).
//! * [`reliability`] — `e^{-e^{-c}}` intra-group gossip reliability, the
//!   inter-group propagation probability `pit`, and the end-to-end product
//!   of eq. 1.
//! * [`tuning`] — the Appendix equivalences: the `c1(c)` settings at which
//!   daMulticast matches each baseline's reliability, their validity
//!   ranges, and the supertable-size bounds under which daMulticast's
//!   memory still wins.
//! * [`gossip_math`] — the shared epidemic primitives.
//!
//! The crate is pure math: no dependencies on the simulator, so the
//! harness can cross-check simulation output against it
//! (`tests/analysis_vs_sim.rs` at the workspace root does exactly that).
//!
//! ```
//! use da_analysis::complexity::{damulticast_messages, GroupLevel};
//! use da_analysis::reliability::damulticast_reliability;
//!
//! // The paper's Sec. VII topology, bottom-up: T2, T1, T0.
//! let chain = [
//!     GroupLevel::paper_default(1000),
//!     GroupLevel::paper_default(100),
//!     GroupLevel::paper_default(10),
//! ];
//! let msgs = damulticast_messages(&chain);
//! assert!(msgs < 14_000.0, "well inside O(S·lnS)");
//! assert!(damulticast_reliability(&chain) > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complexity;
pub mod gossip_math;
pub mod memory;
pub mod reliability;
pub mod tuning;
