//! Reliability closed forms (Sec. VI-D and VI-E.3 of the paper).
//!
//! "By reliability we mean here the probability that every process
//! interested in topic Ti receives a given event published for Ti."
//!
//! daMulticast's reliability for a level-`j` group is the product, from
//! the publication group up to `j`, of the intra-group atomic-gossip
//! probability `e^{-e^{-c}}` and the inter-group propagation probability
//! `pit` (eq. 1 of the paper).

use crate::complexity::GroupLevel;
use crate::gossip_math::infected_fraction;

pub use crate::gossip_math::atomic_infection_probability;
pub use crate::gossip_math::atomic_infection_probability as intra_group_reliability;

/// `nbSuscProc = S · p_sel · π` — the expected number of processes of a
/// group that both received the event (`π`) and elected themselves to
/// forward it (Sec. VI-D).
#[must_use]
pub fn susceptible_processes(level: &GroupLevel, pi: f64) -> f64 {
    level.s as f64 * level.p_sel() * pi.clamp(0.0, 1.0)
}

/// `pbNoIntGrpMsg = (1 − p_succ)^(nbSuscProc · p_a · z)` — the probability
/// that *no* event crosses from a group to its supergroup (Sec. VI-D).
#[must_use]
pub fn pb_no_intergroup_msg(level: &GroupLevel, pi: f64) -> f64 {
    let exponent = susceptible_processes(level, pi) * level.p_a() * level.z as f64;
    (1.0 - level.p_succ).clamp(0.0, 1.0).powf(exponent)
}

/// `pit = 1 − pbNoIntGrpMsg` — the probability that at least one event
/// reaches the supergroup (Sec. VI-D).
#[must_use]
pub fn pit(level: &GroupLevel, pi: f64) -> f64 {
    1.0 - pb_no_intergroup_msg(level, pi)
}

/// `pit` with `π` derived from the epidemic fixpoint of the group's own
/// gossip (fanout `ln S + c`, discounted by `p_succ`).
#[must_use]
pub fn pit_derived(level: &GroupLevel) -> f64 {
    pit(level, infected_fraction(level.s, level.c, level.p_succ))
}

/// daMulticast end-to-end reliability (eq. 1 of the paper):
/// `∏_{i=publication..target} e^{-e^{-c_i}} · pit_i`, with the final
/// (target) group contributing only its intra-group factor — and the root
/// group, having no supergroup, never contributing a `pit`.
///
/// `levels` is ordered bottom-up from the publication group; the target is
/// the last entry. A single-entry slice reduces to plain gossip
/// reliability, the paper's no-hierarchy degenerate case.
///
/// ```
/// use da_analysis::complexity::GroupLevel;
/// use da_analysis::reliability::damulticast_reliability;
///
/// let chain = [
///     GroupLevel::paper_default(1000),
///     GroupLevel::paper_default(100),
///     GroupLevel::paper_default(10),
/// ];
/// let to_leaf = damulticast_reliability(&chain[..1]);
/// let to_root = damulticast_reliability(&chain);
/// assert!(to_root < to_leaf, "each hop multiplies in more risk");
/// assert!(to_root > 0.9, "but the paper's parameters keep it high");
/// ```
#[must_use]
pub fn damulticast_reliability(levels: &[GroupLevel]) -> f64 {
    let mut r = 1.0;
    for (i, level) in levels.iter().enumerate() {
        r *= atomic_infection_probability(level.c);
        let is_last = i + 1 == levels.len();
        if !is_last {
            r *= pit_derived(level);
        }
    }
    r.clamp(0.0, 1.0)
}

/// Gossip-broadcast reliability: `e^{-e^{-c}}` (Sec. VI-E.3 (a)).
#[must_use]
pub fn broadcast_reliability(c: f64) -> f64 {
    atomic_infection_probability(c)
}

/// Gossip-multicast reliability: `∏_i e^{-e^{-c_i}}` (Sec. VI-E.3 (b)) —
/// the event is gossiped independently per level, no fragile inter-group
/// links, but at the cost of per-level membership tables.
#[must_use]
pub fn multicast_reliability(cs: &[f64]) -> f64 {
    cs.iter()
        .map(|&c| atomic_infection_probability(c))
        .product()
}

/// Hierarchical gossip-broadcast reliability: `e^{-N·e^{-c1} - e^{-c2}}`
/// (Sec. VI-E.3 (c)) for `N` groups with intra-group constant `c1` and
/// inter-group constant `c2`.
#[must_use]
pub fn hierarchical_reliability(n_groups: usize, c1: f64, c2: f64) -> f64 {
    (-(n_groups as f64) * (-c1).exp() - (-c2).exp()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_chain() -> Vec<GroupLevel> {
        vec![
            GroupLevel::paper_default(1000),
            GroupLevel::paper_default(100),
            GroupLevel::paper_default(10),
        ]
    }

    #[test]
    fn susceptible_count_paper_values() {
        // S = 1000, p_sel = 0.005, π ≈ 1 → ≈ 5 susceptible forwarders.
        let n = susceptible_processes(&GroupLevel::paper_default(1000), 1.0);
        assert!((n - 5.0).abs() < 1e-9);
    }

    #[test]
    fn no_intergroup_msg_shrinks_with_z() {
        let mut level = GroupLevel::paper_default(1000);
        let p3 = pb_no_intergroup_msg(&level, 1.0);
        level.z = 6;
        // Larger table with same p_a = a/z: a=1 keeps the product a·p_succ
        // constant; raise a alongside to see the effect.
        level.a = 2.0;
        let p6 = pb_no_intergroup_msg(&level, 1.0);
        assert!(p6 < p3, "more spray → less chance of total loss");
    }

    #[test]
    fn pit_is_probability_and_increases_with_g() {
        let mut level = GroupLevel::paper_default(1000);
        let p_g5 = pit(&level, 1.0);
        assert!((0.0..=1.0).contains(&p_g5));
        level.g = 20.0;
        let p_g20 = pit(&level, 1.0);
        assert!(p_g20 > p_g5);
    }

    #[test]
    fn reliability_decreases_up_the_chain() {
        let chain = paper_chain();
        let r_t2 = damulticast_reliability(&chain[..1]);
        let r_t1 = damulticast_reliability(&chain[..2]);
        let r_t0 = damulticast_reliability(&chain);
        assert!(r_t2 > r_t1, "t2 {r_t2} vs t1 {r_t1}");
        assert!(r_t1 > r_t0, "t1 {r_t1} vs t0 {r_t0}");
        assert!(r_t0 > 0.0 && r_t2 <= 1.0);
    }

    #[test]
    fn single_group_degenerates_to_gossip() {
        // "In the extreme case where ... there is only one topic ... our
        // algorithm suffers no degradation" (Sec. I).
        let only = [GroupLevel::paper_default(500)];
        assert!((damulticast_reliability(&only) - broadcast_reliability(5.0)).abs() < 1e-12);
    }

    #[test]
    fn multicast_beats_damulticast_on_chains() {
        // Without fragile inter-group links, multicast's product is larger.
        let chain = paper_chain();
        let mc = multicast_reliability(&[5.0, 5.0, 5.0]);
        let da = damulticast_reliability(&chain);
        assert!(mc >= da);
    }

    #[test]
    fn hierarchical_penalised_by_group_count() {
        let few = hierarchical_reliability(5, 5.0, 5.0);
        let many = hierarchical_reliability(500, 5.0, 5.0);
        assert!(few > many);
        assert!((0.0..=1.0).contains(&many));
    }

    #[test]
    fn all_reliabilities_in_unit_interval() {
        for s in [2usize, 10, 1000] {
            for c in [0.0, 2.0, 5.0] {
                for g in [1.0, 5.0, 50.0] {
                    let level = GroupLevel {
                        s,
                        c,
                        g,
                        a: 1.0,
                        z: 3,
                        p_succ: 0.85,
                    };
                    let r = damulticast_reliability(&[level, GroupLevel::paper_default(10)]);
                    assert!((0.0..=1.0).contains(&r), "out of range: {r}");
                }
            }
        }
    }

    #[test]
    fn perfect_channels_make_pit_one() {
        let level = GroupLevel {
            p_succ: 1.0,
            ..GroupLevel::paper_default(1000)
        };
        assert!((pit(&level, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dead_group_never_propagates() {
        let level = GroupLevel::paper_default(1000);
        assert_eq!(pit(&level, 0.0), 0.0, "π = 0 → nothing to forward");
    }
}
