//! Tuning equivalences (Sec. VI-E.3 and Appendix 2 of the paper):
//! for each baseline, the constant `c1` that daMulticast must use to match
//! the baseline's reliability run with constant `c`, the validity range of
//! `c` for which such a `c1 ≥ 0` exists, and the bound on the supertable
//! size `z` below which daMulticast's memory still wins.
//!
//! Conventions follow the appendix: all levels share the same constants
//! (`c1_Ti = c1`, `pit_Ti = pit`, `S_Ti = S_T`, `z_Ti = z` — "the average
//! case"), `t` is the hierarchy depth, `N` the number of groups of the
//! hierarchical baseline, `n` the total population.

use serde::{Deserialize, Serialize};

/// A closed interval `[lo, hi]` of admissible `c` values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CRange {
    /// Inclusive lower end.
    pub lo: f64,
    /// Exclusive upper end (the equivalence degenerates at the bound).
    pub hi: f64,
}

impl CRange {
    /// True when `c` lies in the range.
    #[must_use]
    pub fn contains(&self, c: f64) -> bool {
        c >= self.lo && c < self.hi
    }

    /// True when the range is non-degenerate.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.lo < self.hi
    }
}

// --- (b) gossip-based multicast -------------------------------------------

/// Validity range of `c` against gossip multicast:
/// `0 ≤ c < −ln(−ln(pit))` (Appendix 2a, conditions ①–③).
///
/// Empty (lo ≥ hi) when `pit ≤ 1/e`, where no `c1` can compensate.
#[must_use]
pub fn multicast_c_range(pit: f64) -> CRange {
    CRange {
        lo: 0.0,
        hi: safe_upper(-(-pit.ln()).ln()),
    }
}

/// `c1 = c − ln(1 + e^c·ln(pit))` (Appendix eq. 16): daMulticast with
/// constant `c1` matches gossip multicast run with constant `c`.
///
/// Returns `None` when `c` is outside [`multicast_c_range`].
#[must_use]
pub fn c1_vs_multicast(c: f64, pit: f64) -> Option<f64> {
    if pit >= 1.0 {
        // Condition ③: pit = 1 makes the levels equivalent as-is.
        return Some(c);
    }
    if !multicast_c_range(pit).contains(c) {
        return None;
    }
    let inner = 1.0 + c.exp() * pit.ln();
    (inner > 0.0).then(|| c - inner.ln())
}

/// Maximum `z` for which daMulticast's memory also beats gossip
/// multicast's: `z ≤ (t−1)(ln S_T + c) + ln(1 + e^c ln(pit))`
/// (Appendix eq. 19).
#[must_use]
pub fn z_bound_vs_multicast(t: usize, s_t: usize, c: f64, pit: f64) -> f64 {
    (t as f64 - 1.0) * ((s_t as f64).ln() + c) + (1.0 + c.exp() * pit.ln()).ln()
}

// --- (a) gossip-based broadcast -------------------------------------------

/// Validity range of `c` against gossip broadcast:
/// `0 ≤ c < −ln(−t·ln(pit))` (Appendix 2b).
#[must_use]
pub fn broadcast_c_range(t: usize, pit: f64) -> CRange {
    CRange {
        lo: 0.0,
        hi: safe_upper(-(-(t as f64) * pit.ln()).ln()),
    }
}

/// `c1 = c − ln(1 + t·e^c·ln(pit)) + ln(t)` (Appendix eq. 23): daMulticast
/// with constant `c1` matches gossip broadcast run with constant `c`.
///
/// Returns `None` when `c` is outside [`broadcast_c_range`].
#[must_use]
pub fn c1_vs_broadcast(c: f64, t: usize, pit: f64) -> Option<f64> {
    if !broadcast_c_range(t, pit).contains(c) {
        return None;
    }
    let t = t as f64;
    let inner = 1.0 + t * c.exp() * pit.ln();
    (inner > 0.0).then(|| c - inner.ln() + t.ln())
}

/// Maximum `z` for which daMulticast's memory also beats broadcast's:
/// `z ≤ ln(n) + ln(1 + t·e^c·ln(pit)) − ln(S_T) − ln(t)` (Appendix
/// eq. 25). A gain needs `ln(n) > ln(S_T) + ln(t)` — the population must
/// dwarf the single interest group.
#[must_use]
pub fn z_bound_vs_broadcast(n: usize, s_t: usize, t: usize, c: f64, pit: f64) -> f64 {
    (n as f64).ln() + (1.0 + t as f64 * c.exp() * pit.ln()).ln()
        - (s_t as f64).ln()
        - (t as f64).ln()
}

// --- (c) hierarchical gossip-based broadcast -------------------------------

/// Validity range of `c` against hierarchical broadcast:
/// `−ln(t(1 − ln(pit)) / (N+1)) ≤ c < −ln(−t·ln(pit) / (N+1))`
/// (Appendix 2c). The lower end is clamped at 0 (c must be non-negative).
#[must_use]
pub fn hierarchical_c_range(t: usize, n_groups: usize, pit: f64) -> CRange {
    let t = t as f64;
    let np1 = n_groups as f64 + 1.0;
    let lo = -(t * (1.0 - pit.ln()) / np1).ln();
    CRange {
        lo: lo.max(0.0),
        hi: safe_upper(-(-t * pit.ln() / np1).ln()),
    }
}

/// `c_T = ln(t) + c − ln(t·e^c·ln(pit) + N + 1)` (Appendix eq. 28):
/// daMulticast with constant `c_T` matches hierarchical broadcast run with
/// `c1 = c2 = c` over `N` groups.
///
/// Returns `None` when `c` is outside [`hierarchical_c_range`].
#[must_use]
pub fn c1_vs_hierarchical(c: f64, t: usize, n_groups: usize, pit: f64) -> Option<f64> {
    if !hierarchical_c_range(t, n_groups, pit).contains(c) {
        return None;
    }
    let t = t as f64;
    let inner = t * c.exp() * pit.ln() + n_groups as f64 + 1.0;
    (inner > 0.0).then(|| t.ln() + c - inner.ln())
}

/// Maximum `z` for which daMulticast's memory also beats the hierarchical
/// baseline's: `z ≤ c + ln(N) + ln(N + 1 + t·e^c·ln(pit)) − ln(t)`
/// (Appendix eq. 30).
#[must_use]
pub fn z_bound_vs_hierarchical(n_groups: usize, t: usize, c: f64, pit: f64) -> f64 {
    let tf = t as f64;
    c + (n_groups as f64).ln() + (n_groups as f64 + 1.0 + tf * c.exp() * pit.ln()).ln() - tf.ln()
}

/// NaN-safe upper bound: `ln` of a non-positive argument means "no valid
/// upper end" — collapse the range to empty.
fn safe_upper(hi: f64) -> f64 {
    if hi.is_nan() {
        f64::NEG_INFINITY
    } else {
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gossip_math::atomic_infection_probability;

    const PIT: f64 = 0.99;

    /// daMulticast per-level reliability with constant c1 and link pit.
    fn da_level(c1: f64, pit: f64) -> f64 {
        atomic_infection_probability(c1) * pit
    }

    #[test]
    fn multicast_equivalence_is_exact_per_level() {
        // e^{-e^{-c1}}·pit must equal e^{-e^{-c}} inside the range.
        for c in [0.0, 0.5, 1.0, 2.0, 4.0] {
            if let Some(c1) = c1_vs_multicast(c, PIT) {
                let lhs = da_level(c1, PIT);
                let rhs = atomic_infection_probability(c);
                assert!(
                    (lhs - rhs).abs() < 1e-12,
                    "c={c}: da {lhs} != multicast {rhs}"
                );
                assert!(c1 >= 0.0, "c1 must be non-negative, got {c1}");
                assert!(c1 >= c, "compensating pit < 1 needs a larger constant");
            }
        }
    }

    #[test]
    fn multicast_range_boundary() {
        let range = multicast_c_range(PIT);
        assert!(range.is_valid());
        // Just below the bound works, the bound itself does not.
        assert!(c1_vs_multicast(range.hi - 1e-6, PIT).is_some());
        assert!(c1_vs_multicast(range.hi, PIT).is_none());
        assert!(c1_vs_multicast(-0.1, PIT).is_none());
    }

    #[test]
    fn multicast_low_pit_has_no_solution() {
        // pit ≤ 1/e → −ln(−ln(pit)) ≤ 0 → empty range.
        let range = multicast_c_range(0.3);
        assert!(!range.is_valid());
        assert!(c1_vs_multicast(2.0, 0.3).is_none());
    }

    #[test]
    fn multicast_pit_one_identity() {
        assert_eq!(c1_vs_multicast(3.0, 1.0), Some(3.0));
    }

    #[test]
    fn broadcast_equivalence_satisfies_appendix_identity() {
        // Eq. (22): e^{-c1} − ln(pit) = e^{-c} / t.
        let t = 3;
        for c in [0.0, 0.5, 1.0, 1.5] {
            if let Some(c1) = c1_vs_broadcast(c, t, PIT) {
                let lhs = (-c1).exp() - PIT.ln();
                let rhs = (-c).exp() / t as f64;
                assert!(
                    (lhs - rhs).abs() < 1e-12,
                    "c={c}: identity violated ({lhs} vs {rhs})"
                );
                assert!(c1 >= 0.0);
            }
        }
    }

    #[test]
    fn broadcast_range_shrinks_with_depth() {
        let r1 = broadcast_c_range(1, PIT);
        let r5 = broadcast_c_range(5, PIT);
        assert!(r1.hi > r5.hi, "deeper hierarchies are harder to match");
    }

    #[test]
    fn hierarchical_equivalence_satisfies_appendix_identity() {
        // Eq. (27): t·e^{-cT} − t·ln(pit) = (N+1)·e^{-c}.
        let (t, n_groups) = (3, 10);
        let range = hierarchical_c_range(t, n_groups, PIT);
        assert!(range.is_valid());
        let c = (range.lo + range.hi) / 2.0;
        let c_t = c1_vs_hierarchical(c, t, n_groups, PIT).expect("mid-range c is valid");
        let lhs = t as f64 * ((-c_t).exp() - PIT.ln());
        let rhs = (n_groups as f64 + 1.0) * (-c).exp();
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
        assert!(c_t >= 0.0);
    }

    #[test]
    fn hierarchical_out_of_range_rejected() {
        let (t, n_groups) = (3, 10);
        let range = hierarchical_c_range(t, n_groups, PIT);
        assert!(c1_vs_hierarchical(range.lo - 0.1, t, n_groups, PIT).is_none());
        assert!(c1_vs_hierarchical(range.hi + 0.1, t, n_groups, PIT).is_none());
    }

    #[test]
    fn z_bounds_paper_shapes() {
        // vs multicast: deeper chains leave more memory headroom (eq. 19
        // grows with t).
        let z3 = z_bound_vs_multicast(3, 1000, 2.0, PIT);
        let z5 = z_bound_vs_multicast(5, 1000, 2.0, PIT);
        assert!(z5 > z3);
        assert!(z3 > 3.0, "the paper's z = 3 fits comfortably");

        // vs broadcast: gain requires n ≫ S_T · t.
        let gain = z_bound_vs_broadcast(1_000_000, 1000, 3, 1.0, PIT);
        let no_gain = z_bound_vs_broadcast(1100, 1000, 3, 1.0, PIT);
        assert!(gain > 0.0);
        assert!(no_gain < gain);

        // vs hierarchical: more groups leave more headroom.
        let z10 = z_bound_vs_hierarchical(10, 3, 1.0, PIT);
        let z100 = z_bound_vs_hierarchical(100, 3, 1.0, PIT);
        assert!(z100 > z10);
    }

    #[test]
    fn ranges_never_contain_nan() {
        for pit in [0.01, 0.3, 0.69, 0.95, 0.999_999] {
            for t in [1usize, 2, 5] {
                assert!(!broadcast_c_range(t, pit).lo.is_nan());
                assert!(!broadcast_c_range(t, pit).hi.is_nan());
                assert!(!multicast_c_range(pit).hi.is_nan());
                for n in [1usize, 10, 100] {
                    let r = hierarchical_c_range(t, n, pit);
                    assert!(!r.lo.is_nan() && !r.hi.is_nan());
                }
            }
        }
    }
}
