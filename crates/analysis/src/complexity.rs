//! Message-complexity closed forms (Sec. VI-B and Appendix 1 of the
//! paper).
//!
//! All counts are *expected numbers of event messages for one
//! publication*, climbing from the publication level to the root. Group
//! levels are indexed like the paper: index 0 is the bottom-most group
//! (`T_t`), the last index is the root (`T_0`) — callers supply a slice
//! ordered bottom-up.

use serde::{Deserialize, Serialize};

/// Per-group parameters entering the complexity formulas.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupLevel {
    /// Group size `S_Ti`.
    pub s: usize,
    /// Gossip constant `c_Ti` (fanout `ln(S) + c`).
    pub c: f64,
    /// Link-election weight `g_Ti` (`p_sel = g / S`).
    pub g: f64,
    /// Spray weight `a_Ti` (`p_a = a / z`).
    pub a: f64,
    /// Supertable size `z_Ti`.
    pub z: usize,
    /// Channel success probability `p_succ_Ti`.
    pub p_succ: f64,
}

impl GroupLevel {
    /// The paper's Sec. VII-A parameters for a group of size `s`.
    #[must_use]
    pub fn paper_default(s: usize) -> Self {
        GroupLevel {
            s,
            c: 5.0,
            g: 5.0,
            a: 1.0,
            z: 3,
            p_succ: 0.85,
        }
    }

    /// `p_sel = g / S`, clamped to `[0, 1]`.
    #[must_use]
    pub fn p_sel(&self) -> f64 {
        if self.s == 0 {
            0.0
        } else {
            (self.g / self.s as f64).clamp(0.0, 1.0)
        }
    }

    /// `p_a = a / z`, clamped to `[0, 1]`.
    #[must_use]
    pub fn p_a(&self) -> f64 {
        if self.z == 0 {
            0.0
        } else {
            (self.a / self.z as f64).clamp(0.0, 1.0)
        }
    }
}

/// Expected intra-group messages in one group: `S · (ln S + c)`
/// (Sec. VI-B: "the overall number of events sent in the group Ti is thus
/// upper bounded by `S_Ti · (ln(S_Ti) + c_Ti)`").
#[must_use]
pub fn intra_group_messages(s: usize, c: f64) -> f64 {
    if s == 0 {
        return 0.0;
    }
    s as f64 * ((s as f64).ln() + c)
}

/// Expected messages crossing from one group to its supergroup:
/// `nbSuperMsg = S · p_sel · p_a · z · p_succ` (Sec. VI-B).
#[must_use]
pub fn intergroup_messages(level: &GroupLevel) -> f64 {
    level.s as f64 * level.p_sel() * level.p_a() * level.z as f64 * level.p_succ
}

/// Total expected messages for one publication climbing the whole chain:
/// `Σ_i S_i(ln S_i + c_i) + Σ_{i<root} S_i·p_sel·p_a·p_succ·z`
/// (Sec. VI-B; the second sum skips the root, which has no supergroup).
///
/// `levels` is ordered bottom-up: `levels[0]` is the publication group,
/// the last entry the root group.
#[must_use]
pub fn damulticast_messages(levels: &[GroupLevel]) -> f64 {
    let intra: f64 = levels.iter().map(|l| intra_group_messages(l.s, l.c)).sum();
    let inter: f64 = levels
        .iter()
        .take(levels.len().saturating_sub(1)) // root forwards nowhere
        .map(intergroup_messages)
        .sum();
    intra + inter
}

/// Gossip-broadcast message count: `n · (ln n + c)` (Appendix eq. 7).
#[must_use]
pub fn broadcast_messages(n: usize, c: f64) -> f64 {
    intra_group_messages(n, c)
}

/// Gossip-multicast message count: `Σ_i S_i (ln S_i + c_i)` (Appendix
/// eq. 3) — the event is gossiped independently in every group of the
/// chain, with no inter-group forwarding cost.
#[must_use]
pub fn multicast_messages(levels: &[GroupLevel]) -> f64 {
    levels.iter().map(|l| intra_group_messages(l.s, l.c)).sum()
}

/// Hierarchical gossip-broadcast message count:
/// `N · m · (ln N + ln m + c1 + c2)` (Appendix eq. 10), where `N` is the
/// number of interest-oblivious groups and `m` the processes per group.
#[must_use]
pub fn hierarchical_messages(n_groups: usize, m: usize, c1: f64, c2: f64) -> f64 {
    if n_groups == 0 || m == 0 {
        return 0.0;
    }
    (n_groups * m) as f64 * ((n_groups as f64).ln() + (m as f64).ln() + c1 + c2)
}

/// The paper's worst-case bound
/// `t · S_Tmax · ln(S_Tmax) · (1 + c_max + z_max)` (Sec. VI-B) — every
/// concrete count must stay below it.
#[must_use]
pub fn damulticast_upper_bound(t: usize, s_max: usize, c_max: f64, z_max: usize) -> f64 {
    if s_max <= 1 {
        return 0.0;
    }
    t as f64 * s_max as f64 * (s_max as f64).ln() * (1.0 + c_max + z_max as f64)
}

/// `S_Tmax` of a chain — the size of its biggest group.
#[must_use]
pub fn s_max(levels: &[GroupLevel]) -> usize {
    levels.iter().map(|l| l.s).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Sec. VII-A chain, bottom-up: T2, T1, T0.
    fn paper_chain() -> Vec<GroupLevel> {
        vec![
            GroupLevel::paper_default(1000),
            GroupLevel::paper_default(100),
            GroupLevel::paper_default(10),
        ]
    }

    #[test]
    fn intra_matches_hand_computation() {
        // 1000 · (ln 1000 + 5) = 1000 · 11.9078
        let v = intra_group_messages(1000, 5.0);
        assert!((v - 11_907.755).abs() < 1e-2);
        assert_eq!(intra_group_messages(0, 5.0), 0.0);
    }

    #[test]
    fn intergroup_matches_paper_expectation() {
        // S·p_sel·p_a·z·p_succ = 1000·0.005·(1/3)·3·0.85 = 4.25.
        let v = intergroup_messages(&GroupLevel::paper_default(1000));
        assert!((v - 4.25).abs() < 1e-12);
    }

    #[test]
    fn total_is_intra_plus_inter_without_root() {
        let chain = paper_chain();
        let total = damulticast_messages(&chain);
        let intra: f64 = chain.iter().map(|l| intra_group_messages(l.s, l.c)).sum();
        let inter = intergroup_messages(&chain[0]) + intergroup_messages(&chain[1]);
        assert!((total - (intra + inter)).abs() < 1e-9);
    }

    #[test]
    fn total_stays_below_paper_bound() {
        let chain = paper_chain();
        let total = damulticast_messages(&chain);
        let bound = damulticast_upper_bound(3, s_max(&chain), 5.0, 3);
        assert!(total <= bound, "total {total} exceeds bound {bound}");
    }

    #[test]
    fn broadcast_dominates_when_population_large() {
        // n = 1110 processes all in one group vs the data-aware chain.
        let chain = paper_chain();
        let da = damulticast_messages(&chain);
        let bc = broadcast_messages(1110, 5.0);
        assert!(
            bc > da,
            "broadcast ({bc}) should cost more than daMulticast ({da})"
        );
    }

    #[test]
    fn multicast_equals_damulticast_minus_links() {
        let chain = paper_chain();
        let mc = multicast_messages(&chain);
        let da = damulticast_messages(&chain);
        assert!(da > mc, "daMulticast adds only the inter-group messages");
        assert!((da - mc) < 10.0, "inter-group overhead is a few messages");
    }

    #[test]
    fn hierarchical_formula() {
        // N = 10 groups of m = 111: N·m(ln N + ln m + c1 + c2).
        let v = hierarchical_messages(10, 111, 5.0, 5.0);
        let expect = 1110.0 * (10.0f64.ln() + 111.0f64.ln() + 10.0);
        assert!((v - expect).abs() < 1e-9);
        assert_eq!(hierarchical_messages(0, 5, 1.0, 1.0), 0.0);
    }

    #[test]
    fn complexity_scales_as_s_ln_s() {
        // Ratio (messages / S·lnS) must stay bounded as S grows.
        let ratio = |s: usize| {
            let chain = vec![GroupLevel::paper_default(s)];
            damulticast_messages(&chain) / (s as f64 * (s as f64).ln())
        };
        let r3 = ratio(1_000);
        let r6 = ratio(1_000_000);
        assert!(r6 < r3, "the c-term amortises as S grows");
        assert!(r6 > 1.0, "but the S·lnS core remains");
    }

    #[test]
    fn probabilities_clamped() {
        let tiny = GroupLevel {
            s: 2,
            c: 5.0,
            g: 100.0,
            a: 50.0,
            z: 3,
            p_succ: 1.0,
        };
        assert_eq!(tiny.p_sel(), 1.0);
        assert_eq!(tiny.p_a(), 1.0);
        let zero = GroupLevel {
            s: 0,
            z: 0,
            ..GroupLevel::paper_default(0)
        };
        assert_eq!(zero.p_sel(), 0.0);
        assert_eq!(zero.p_a(), 0.0);
    }
}
