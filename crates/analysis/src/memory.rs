//! Memory-complexity closed forms (Sec. VI-C and VI-E.2 of the paper).
//!
//! All formulas count *membership-table entries per process* (the paper's
//! `totalMbInfo`). Natural logarithms throughout, matching the analysis.

/// daMulticast memory per process interested in a topic of group size `s`:
/// `ln(S) + c + z` (Sec. VI-C). Root-group members save the `z` term —
/// pass `z = 0` for them.
#[must_use]
pub fn damulticast_memory(s: usize, c: f64, z: usize) -> f64 {
    group_table(s, c) + z as f64
}

/// Gossip-broadcast memory: one table over the whole population,
/// `ln(n) + c` (Sec. VI-E.2 (a)).
#[must_use]
pub fn broadcast_memory(n: usize, c: f64) -> f64 {
    group_table(n, c)
}

/// Gossip-multicast memory: one table per level of the interest chain,
/// `Σ_i (ln S_i + c_i)` (Sec. VI-E.2 (b)). `levels` is `(S_i, c_i)`
/// bottom-up.
#[must_use]
pub fn multicast_memory(levels: &[(usize, f64)]) -> f64 {
    levels.iter().map(|&(s, c)| group_table(s, c)).sum()
}

/// Hierarchical gossip-broadcast memory: `ln(m) + c1 + ln(N) + c2`
/// (Sec. VI-E.2 (c)) for `N` groups of `m` processes.
#[must_use]
pub fn hierarchical_memory(n_groups: usize, m: usize, c1: f64, c2: f64) -> f64 {
    group_table(m, c1) + group_table(n_groups, c2)
}

/// One gossip table: `ln(s) + c`, zero for empty/singleton groups.
fn group_table(s: usize, c: f64) -> f64 {
    if s <= 1 {
        return 0.0;
    }
    (s as f64).ln() + c
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: f64 = 5.0;

    #[test]
    fn damulticast_beats_multicast_on_chains() {
        // A process interested in T2 of the paper's chain: daMulticast
        // keeps ln(1000)+5+3 entries; gossip multicast keeps a table per
        // level.
        let da = damulticast_memory(1000, C, 3);
        let mc = multicast_memory(&[(1000, C), (100, C), (10, C)]);
        assert!(da < mc, "da {da} >= multicast {mc}");
    }

    #[test]
    fn damulticast_close_to_broadcast_plus_z() {
        // vs broadcast over n = 1110: ln(1000)+5+3 vs ln(1110)+5.
        let da = damulticast_memory(1000, C, 3);
        let bc = broadcast_memory(1110, C);
        // The z = 3 supertable makes daMulticast marginally bigger here,
        // but it buys zero parasite messages (Sec. VI-E.2 discussion).
        assert!((da - bc) < 3.0 + 1.0);
    }

    #[test]
    fn root_members_save_the_supertable() {
        let leaf = damulticast_memory(1000, C, 3);
        let root = damulticast_memory(1000, C, 0);
        assert!((leaf - root - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hierarchical_is_two_tables() {
        let h = hierarchical_memory(10, 111, C, C);
        let expect = (111.0f64.ln() + C) + (10.0f64.ln() + C);
        assert!((h - expect).abs() < 1e-12);
    }

    #[test]
    fn degenerate_groups_cost_nothing() {
        assert_eq!(damulticast_memory(1, C, 0), 0.0);
        assert_eq!(broadcast_memory(0, C), 0.0);
        assert_eq!(multicast_memory(&[]), 0.0);
        assert_eq!(hierarchical_memory(1, 1, C, C), 0.0);
    }

    #[test]
    fn memory_monotone_in_group_size() {
        let mut prev = 0.0;
        for s in [2usize, 10, 100, 1_000, 10_000] {
            let m = damulticast_memory(s, C, 3);
            assert!(m > prev);
            prev = m;
        }
    }

    #[test]
    fn multicast_grows_with_chain_depth() {
        let shallow = multicast_memory(&[(1000, C)]);
        let deep = multicast_memory(&[(1000, C), (100, C), (10, C), (5, C)]);
        assert!(deep > shallow);
        // daMulticast stays flat regardless of depth — the paper's key
        // memory property.
        let da = damulticast_memory(1000, C, 3);
        assert!(deep > da);
    }
}
