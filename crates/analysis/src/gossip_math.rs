//! Epidemic-dissemination mathematics shared by the other analysis
//! modules.
//!
//! Two classic results underpin the paper's analysis:
//!
//! * **Erdős–Rényi connectivity** (the paper's reference \[3\]): when every process
//!   relays an event to `ln(S) + c` uniformly random group members, the
//!   probability that *every* process receives it tends to
//!   `e^{-e^{-c}}` — [`atomic_infection_probability`].
//! * **The epidemic fixpoint**: the expected *proportion* `π` of processes
//!   reached by push gossip with mean fanout `f` solves
//!   `π = 1 − e^{−f·π}` — [`epidemic_fixpoint`]. The paper calls this
//!   `π_Ti`, "the proportion of processes that actually receive the event
//!   through the underlying gossip algorithm" (Sec. VI-D, citing \[4\]).

/// Probability that **all** members of a group receive a gossiped event
/// when every infected member forwards it to `ln(S) + c` random members:
/// `e^{-e^{-c}}` (Erdős–Rényi; Sec. VI-D of the paper).
///
/// ```
/// use da_analysis::gossip_math::atomic_infection_probability;
/// let r = atomic_infection_probability(5.0);
/// assert!(r > 0.99 && r < 1.0);
/// // c = 0 gives the classic e^{-1}.
/// assert!((atomic_infection_probability(0.0) - (-1.0f64).exp()).abs() < 1e-12);
/// ```
#[must_use]
pub fn atomic_infection_probability(c: f64) -> f64 {
    (-(-c).exp()).exp()
}

/// The non-trivial fixpoint of `π = 1 − e^{−f·π}` — the expected fraction
/// of a group infected by push gossip with mean fanout `f`.
///
/// Returns 0 for `f ≤ 1` (sub-critical epidemics die out) and approaches 1
/// as `f` grows. Solved by bisection on `g(π) = π − 1 + e^{−f·π}`, which
/// is negative just above 0 and positive at 1 for every `f > 1` — plain
/// fixpoint iteration stalls near the critical point `f ≈ 1`, where its
/// contraction rate vanishes.
///
/// ```
/// use da_analysis::gossip_math::epidemic_fixpoint;
/// assert_eq!(epidemic_fixpoint(0.5), 0.0);
/// let pi = epidemic_fixpoint(8.0); // the paper's log10(1000)+5 fanout
/// assert!(pi > 0.999);
/// ```
#[must_use]
pub fn epidemic_fixpoint(fanout: f64) -> f64 {
    if fanout <= 1.0 {
        return 0.0;
    }
    let g = |pi: f64| pi - 1.0 + (-fanout * pi).exp();
    // Find a lower bracket where g < 0 (g dips negative above the trivial
    // root at 0 whenever f > 1).
    let mut lo = 1e-12;
    while g(lo) >= 0.0 {
        lo *= 10.0;
        if lo >= 1.0 {
            return 0.0; // numerically indistinguishable from critical
        }
    }
    let mut hi = 1.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if g(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo).abs() < f64::EPSILON {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Expected fraction of a *finite* group of size `s` reached by gossip
/// with the paper's fanout `ln(s) + c`, further discounted by the channel
/// success probability `p_succ` (each push independently survives with
/// `p_succ`, so the effective fanout is `p_succ · (ln s + c)`).
///
/// ```
/// use da_analysis::gossip_math::infected_fraction;
/// let f = infected_fraction(1000, 5.0, 0.85);
/// assert!(f > 0.99);
/// assert!(infected_fraction(1, 5.0, 1.0) >= 1.0); // lone member has it
/// ```
#[must_use]
pub fn infected_fraction(s: usize, c: f64, p_succ: f64) -> f64 {
    if s <= 1 {
        return 1.0;
    }
    let fanout = ((s as f64).ln() + c) * p_succ.clamp(0.0, 1.0);
    epidemic_fixpoint(fanout)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_probability_is_a_probability() {
        for c in [-5.0, -1.0, 0.0, 1.0, 5.0, 20.0] {
            let p = atomic_infection_probability(c);
            assert!((0.0..=1.0).contains(&p), "c={c} gave {p}");
        }
    }

    #[test]
    fn atomic_probability_monotone_in_c() {
        let mut prev = 0.0;
        for i in 0..100 {
            let c = -5.0 + 0.2 * f64::from(i);
            let p = atomic_infection_probability(c);
            assert!(p >= prev, "not monotone at c={c}");
            prev = p;
        }
    }

    #[test]
    fn paper_constant_c5() {
        // e^{-e^{-5}} ≈ 0.99329.
        let p = atomic_infection_probability(5.0);
        assert!((p - 0.993_29).abs() < 1e-4);
    }

    #[test]
    fn fixpoint_subcritical_zero() {
        assert_eq!(epidemic_fixpoint(0.0), 0.0);
        assert_eq!(epidemic_fixpoint(1.0), 0.0);
        assert_eq!(epidemic_fixpoint(-3.0), 0.0);
    }

    #[test]
    fn fixpoint_satisfies_equation() {
        for f in [1.5, 2.0, 4.0, 8.0, 12.0] {
            let pi = epidemic_fixpoint(f);
            let residual = (pi - (1.0 - (-f * pi).exp())).abs();
            assert!(residual < 1e-12, "f={f}: residual {residual}");
            assert!(pi > 0.0 && pi < 1.0);
        }
    }

    #[test]
    fn fixpoint_monotone_in_fanout() {
        let mut prev = 0.0;
        for i in 2..60 {
            let f = f64::from(i) * 0.25;
            let pi = epidemic_fixpoint(f);
            assert!(pi >= prev, "not monotone at f={f}");
            prev = pi;
        }
    }

    #[test]
    fn infected_fraction_degrades_with_loss() {
        let perfect = infected_fraction(1000, 5.0, 1.0);
        let lossy = infected_fraction(1000, 5.0, 0.85);
        let very_lossy = infected_fraction(1000, 5.0, 0.2);
        assert!(perfect >= lossy);
        assert!(lossy >= very_lossy);
    }

    #[test]
    fn infected_fraction_tiny_groups() {
        assert_eq!(infected_fraction(0, 5.0, 1.0), 1.0);
        assert_eq!(infected_fraction(1, 5.0, 1.0), 1.0);
    }
}
