//! Property tests on the analytical model: every formula must respect the
//! ranges and monotonicities the paper's derivation relies on.

use da_analysis::complexity::{damulticast_messages, damulticast_upper_bound, s_max, GroupLevel};
use da_analysis::gossip_math::{atomic_infection_probability, epidemic_fixpoint};
use da_analysis::memory::{broadcast_memory, damulticast_memory, multicast_memory};
use da_analysis::reliability::{damulticast_reliability, pit};
use da_analysis::tuning::{
    broadcast_c_range, c1_vs_broadcast, c1_vs_hierarchical, c1_vs_multicast, hierarchical_c_range,
    multicast_c_range,
};
use proptest::prelude::*;

fn arb_level() -> impl Strategy<Value = GroupLevel> {
    (
        2usize..5_000,
        0.0f64..8.0,
        1.0f64..20.0,
        1usize..6,
        0.01f64..1.0,
    )
        .prop_map(|(s, c, g, z, p_succ)| GroupLevel {
            s,
            c,
            g,
            a: 1.0,
            z,
            p_succ,
        })
}

proptest! {
    #[test]
    fn atomic_probability_in_unit_interval(c in -10.0f64..20.0) {
        let p = atomic_infection_probability(c);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn epidemic_fixpoint_in_unit_interval_and_consistent(f in 0.0f64..50.0) {
        let pi = epidemic_fixpoint(f);
        prop_assert!((0.0..=1.0).contains(&pi));
        if f > 1.0 {
            // Must satisfy its own defining equation.
            prop_assert!((pi - (1.0 - (-f * pi).exp())).abs() < 1e-9);
        } else {
            prop_assert_eq!(pi, 0.0);
        }
    }

    #[test]
    fn pit_is_probability(level in arb_level(), pi_in in 0.0f64..1.0) {
        let p = pit(&level, pi_in);
        prop_assert!((0.0..=1.0).contains(&p), "pit = {}", p);
    }

    #[test]
    fn reliability_is_probability_and_antitone_in_depth(
        levels in prop::collection::vec(arb_level(), 1..6),
    ) {
        let mut prev = 1.0f64;
        for depth in 1..=levels.len() {
            let r = damulticast_reliability(&levels[..depth]);
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert!(r <= prev + 1e-12, "reliability grew with depth");
            prev = r;
        }
    }

    #[test]
    fn messages_positive_and_below_bound(
        levels in prop::collection::vec(arb_level(), 1..6),
    ) {
        let total = damulticast_messages(&levels);
        prop_assert!(total >= 0.0);
        let c_max = levels.iter().map(|l| l.c).fold(0.0, f64::max);
        let z_max = levels.iter().map(|l| l.z).max().unwrap_or(0);
        let bound = damulticast_upper_bound(levels.len(), s_max(&levels), c_max, z_max);
        prop_assert!(
            total <= bound + 1e-6,
            "total {} exceeds bound {}", total, bound
        );
    }

    #[test]
    fn memory_monotone_in_s(s in 2usize..100_000, c in 0.0f64..10.0, z in 0usize..10) {
        let m1 = damulticast_memory(s, c, z);
        let m2 = damulticast_memory(s * 2, c, z);
        prop_assert!(m2 > m1);
    }

    #[test]
    fn damulticast_memory_never_worse_than_multicast(
        sizes in prop::collection::vec(2usize..10_000, 2..6),
        c in 0.0f64..10.0,
        z in 1usize..4,
    ) {
        // For a chain of ≥ 2 levels the paper claims strict improvement as
        // long as z stays below the eq. 19 bound; z ≤ 3 is always below it
        // for chains of ≥ 2 non-trivial levels with c ≥ 0.
        let levels: Vec<(usize, f64)> = sizes.iter().map(|&s| (s, c)).collect();
        let bottom = sizes[0];
        let da = damulticast_memory(bottom, c, z);
        let mc = multicast_memory(&levels);
        prop_assert!(da <= mc + z as f64, "da {} vs multicast {}", da, mc);
    }

    #[test]
    fn broadcast_memory_grows_with_population(n in 2usize..1_000_000, c in 0.0f64..10.0) {
        prop_assert!(broadcast_memory(n * 2, c) > broadcast_memory(n, c));
    }

    #[test]
    fn multicast_equivalence_exact_inside_range(c in 0.0f64..6.0, pit_v in 0.7f64..0.999_999) {
        if let Some(c1) = c1_vs_multicast(c, pit_v) {
            prop_assert!(multicast_c_range(pit_v).contains(c));
            let lhs = atomic_infection_probability(c1) * pit_v;
            let rhs = atomic_infection_probability(c);
            prop_assert!((lhs - rhs).abs() < 1e-9, "lhs {} rhs {}", lhs, rhs);
            prop_assert!(c1 >= -1e-12, "c1 = {}", c1);
        } else {
            prop_assert!(!multicast_c_range(pit_v).contains(c) || pit_v >= 1.0);
        }
    }

    #[test]
    fn broadcast_equivalence_identity(
        c in 0.0f64..4.0,
        t in 1usize..6,
        pit_v in 0.9f64..0.999_999,
    ) {
        if let Some(c1) = c1_vs_broadcast(c, t, pit_v) {
            // Appendix eq. 22: e^{-c1} − ln(pit) = e^{-c} / t.
            let lhs = (-c1).exp() - pit_v.ln();
            let rhs = (-c).exp() / t as f64;
            prop_assert!((lhs - rhs).abs() < 1e-9);
        } else {
            prop_assert!(!broadcast_c_range(t, pit_v).contains(c));
        }
    }

    #[test]
    fn hierarchical_equivalence_identity(
        t in 1usize..6,
        n_groups in 1usize..50,
        pit_v in 0.9f64..0.999_999,
        frac in 0.01f64..0.99,
    ) {
        let range = hierarchical_c_range(t, n_groups, pit_v);
        prop_assume!(range.is_valid());
        let c = range.lo + frac * (range.hi - range.lo);
        if let Some(c_t) = c1_vs_hierarchical(c, t, n_groups, pit_v) {
            // Appendix eq. 27: t·e^{-cT} − t·ln(pit) = (N+1)·e^{-c}.
            let lhs = t as f64 * ((-c_t).exp() - pit_v.ln());
            let rhs = (n_groups as f64 + 1.0) * (-c).exp();
            prop_assert!((lhs - rhs).abs() < 1e-6, "lhs {} rhs {}", lhs, rhs);
            prop_assert!(c_t >= -1e-12);
        }
    }
}
