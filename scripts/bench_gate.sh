#!/usr/bin/env bash
# Advisory performance gate for the live-runtime benches.
#
# Runs `runtime_throughput` in --quick mode with DA_BENCH_JSON pointed at
# a fresh file, then diffs every row's ns_per_iter against the committed
# baseline (BENCH_runtime.json at the repo root) — the burst/batching
# rows and, since PR 5, the `live_churn16`/`sim_churn16` rows measuring
# the failure-plan lifecycle path on both substrates. Rows regressing by
# more than the threshold are flagged, as are baseline rows that vanish
# from the fresh run (a renamed or dropped bench silently escapes the
# gate otherwise) and fresh rows missing from the committed baseline (a
# new bench nobody re-pinned — regenerate BENCH_runtime.json). Each row
# also reports the shim's peak_rss_kb sample (process VmHWM when the
# row finished — monotone across the run, so jumps between consecutive
# rows localise memory growth).
#
# After the diff table, a second pass over the fresh run's
# live_burst16_w{1,2,4,8} sweep computes parallel efficiency per width
# (ns at w1 divided by ns at wN — how much of the single-worker time
# each wider pool keeps) and flags non-monotone scaling: any consecutive
# step where adding workers makes the burst slower beyond the same
# noise threshold the diff table uses (single-shot wall-clock rows
# swing either way by well over 10% between runs; one noise model for
# the whole gate). On a single-core host flat (~100%) efficiency is the
# ceiling; the flag catches the data plane *losing* time to extra
# workers — a scaling cliff, not scheduler jitter.
#
# The gate is ADVISORY by default: it always exits 0, because the shim
# bench harness takes single-shot wall-clock means and CI machines are
# noisy — a >25% swing is worth a look, not a red build. Pass --strict to
# turn flagged regressions into a nonzero exit (for local perf work).
#
# Usage: scripts/bench_gate.sh [--strict] [--out FILE] [--threshold PCT]

set -euo pipefail
cd "$(dirname "$0")/.."

STRICT=0
THRESHOLD=25
OUT=""
while [ $# -gt 0 ]; do
  case "$1" in
    --strict) STRICT=1 ;;
    --out) OUT="${2:?--out needs a file path}"; shift ;;
    --threshold) THRESHOLD="${2:?--threshold needs a percentage}"; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

BASELINE="BENCH_runtime.json"
if [ ! -f "$BASELINE" ]; then
  echo "bench_gate: no committed baseline at $BASELINE — nothing to diff" >&2
  exit 0
fi

if [ -z "$OUT" ]; then
  OUT="$(mktemp)"
  trap 'rm -f "$OUT"' EXIT
fi

rm -f "$OUT"
echo "bench_gate: running runtime_throughput (--quick) → $OUT"
DA_BENCH_JSON="$OUT" cargo bench -p da-bench --bench runtime_throughput -- --quick

echo
echo "bench_gate: fresh run vs committed $BASELINE (threshold ${THRESHOLD}%)"
# The JSON is one flat object per line with fixed keys, written by the
# criterion shim — field extraction by delimiter is exact, no jq needed.
TABLE=$(awk -v threshold="$THRESHOLD" -F'"' '
  function field(line, key,   parts) {
    if (split(line, parts, "\"" key "\":") < 2) return 0
    sub(/[,}].*/, "", parts[2])
    return parts[2] + 0
  }
  function rss(line,   kb) {
    kb = field(line, "peak_rss_kb")
    return kb > 0 ? sprintf("  rss %7.1f MiB", kb / 1024) : ""
  }
  FNR == NR { base[$4] = field($0, "ns_per_iter"); next }
  {
    name = $4
    fresh = field($0, "ns_per_iter")
    if (!(name in base)) {
      printf "  %-55s %14.1f ns/iter%s  <- NEW ROW (re-pin BENCH_runtime.json)\n", \
             name, fresh, rss($0)
      next
    }
    delta = (fresh - base[name]) / base[name] * 100
    flag = ""
    if (delta > threshold) { flag = "  <- REGRESSION" }
    else if (delta < -threshold) { flag = "  (improved)" }
    printf "  %-55s %14.1f -> %14.1f ns/iter  %+7.1f%%%s%s\n", \
           name, base[name], fresh, delta, rss($0), flag
    seen[name] = 1
  }
  END {
    for (name in base) if (!(name in seen))
      printf "  %-55s baseline row MISSING from fresh run  <- REGRESSION\n", name
  }
' "$BASELINE" "$OUT")
echo "$TABLE"
BAD=$(printf '%s\n' "$TABLE" | grep -c -- '<- REGRESSION' || true)
NEW=$(printf '%s\n' "$TABLE" | grep -c -- '<- NEW ROW' || true)

echo
echo "bench_gate: worker-scaling sweep (fresh run, slack ${THRESHOLD}%)"
SCALING=$(awk -v threshold="$THRESHOLD" -F'"' '
  function field(line, key,   parts) {
    if (split(line, parts, "\"" key "\":") < 2) return 0
    sub(/[,}].*/, "", parts[2])
    return parts[2] + 0
  }
  $4 ~ /\/live_burst16_w[0-9]+\// {
    n = $4
    sub(/.*\/live_burst16_w/, "", n)
    sub(/\/.*/, "", n)
    ns[n + 0] = field($0, "ns_per_iter")
  }
  END {
    if (!(1 in ns)) { print "  (no live_burst16_w1 row in the fresh run)"; exit }
    prev = -1
    split("1 2 4 8", widths, " ")
    for (i = 1; i <= 4; i++) {
      w = widths[i]
      if (!(w in ns)) continue
      eff = ns[1] / ns[w] * 100
      flag = ""
      # Non-monotone: this width is slower than the narrower one left
      # of it by more than the gate-wide noise slack. Single-shot rows
      # on an oversubscribed host jitter well past 10% width-to-width;
      # a real scaling cliff clears the threshold run after run.
      if (prev > 0 && ns[w] > prev * (1 + threshold / 100)) flag = "  <- NON-MONOTONE SCALING"
      printf "  w%-2d %14.1f ns/iter   efficiency vs w1 %6.1f%%%s\n", w, ns[w], eff, flag
      prev = ns[w]
    }
  }
' "$OUT")
echo "$SCALING"
NONMONO=$(printf '%s\n' "$SCALING" | grep -c -- '<- NON-MONOTONE' || true)

if [ "$NEW" -gt 0 ]; then
  echo
  echo "bench_gate: $NEW new row(s) not in the committed baseline — regenerate it with:"
  echo "  rm -f BENCH_runtime.json && DA_BENCH_JSON=BENCH_runtime.json cargo bench -p da-bench --bench runtime_throughput -- --quick"
fi

if [ "$NONMONO" -gt 0 ]; then
  echo
  echo "bench_gate: $NONMONO sweep step(s) lose time to extra workers (advisory)"
fi

if [ "$BAD" -gt 0 ] || [ "$NONMONO" -gt 0 ]; then
  if [ "$BAD" -gt 0 ]; then
    echo
    echo "bench_gate: $BAD row(s) regressed beyond ${THRESHOLD}% (advisory)"
  fi
  if [ "$STRICT" = "1" ]; then
    exit 1
  fi
else
  echo
  echo "bench_gate: no row regressed beyond ${THRESHOLD}%; worker scaling is monotone"
fi
exit 0
