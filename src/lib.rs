//! # damulticast-suite
//!
//! Facade crate for the daMulticast reproduction workspace. It re-exports
//! every member crate so that examples and integration tests can address the
//! whole system through a single dependency.
//!
//! The interesting entry points are:
//!
//! * [`damulticast`] — the paper's contribution (the daMulticast protocol).
//! * [`da_topics`] — the topic-hierarchy substrate.
//! * [`da_simnet`] — the deterministic discrete-event simulation kernel.
//! * [`da_runtime`] — the concurrent live-execution substrate (the same
//!   protocol code on a worker-pool actor runtime).
//! * [`da_membership`] — the gossip-based membership substrate.
//! * [`da_baselines`] — the three baseline dissemination algorithms.
//! * [`da_analysis`] — closed-form analysis from Section VI of the paper.
//! * [`da_harness`] — experiment harness regenerating every paper figure.
//!
//! ```
//! use damulticast_suite::da_analysis::reliability::atomic_infection_probability;
//! let r = atomic_infection_probability(5.0);
//! assert!(r > 0.99 && r < 1.0);
//! ```

pub use da_analysis;
pub use da_baselines;
pub use da_harness;
pub use da_membership;
pub use da_runtime;
pub use da_simnet;
pub use da_topics;
pub use damulticast;

/// Convenience prelude: the types most programs need, one `use` away.
///
/// ```
/// use damulticast_suite::prelude::*;
///
/// # fn main() -> Result<(), DaError> {
/// let net = StaticNetwork::linear(&[5, 25], ParamMap::default(), 1)?;
/// let mut engine = Engine::new(SimConfig::default(), net.into_processes());
/// engine.run_until_quiescent(16);
/// # Ok(())
/// # }
/// ```
pub mod prelude {
    pub use da_membership::FanoutRule;
    pub use da_runtime::{Runtime, RuntimeConfig};
    pub use da_simnet::{
        ChannelConfig, Engine, FailureModel, FaultConfig, Histogram, NetworkModel, NodeId,
        Partition, PartitionSchedule, ProcessId, SimConfig, Topology, TraceConfig, TraceEvent,
        TraceLog, TraceMode, TraceVerdict,
    };
    pub use da_topics::{TopicHierarchy, TopicId};
    pub use damulticast::{
        DaError, DaProcess, DynamicNetwork, Event, EventId, Exec, ExecProtocol, ParamMap,
        StaticNetwork, TopicParams,
    };
}
